"""Gram-method serving: the no-densification guarantee end to end.

Registering a study with ``method="gram"`` routes bundle computation
through the Gram ST-HOSVD, so the stored sparse ensemble is never
materialized densely — ``tensor.dense_unfolds`` stays at exactly zero
from registration through query answering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.serving import StudyCatalog

from .conftest import make_sparse


@pytest.fixture()
def gram_catalog(tmp_path) -> StudyCatalog:
    cat = StudyCatalog(tmp_path / "serving")
    cat.register(
        "gamma", make_sparse((6, 5, 4), seed=3), ranks=[3, 3, 3],
        method="gram",
    )
    return cat


class TestGramServingPath:
    def test_dense_unfolds_pinned_zero(self, tmp_path):
        """Acceptance guard: registration + bundle compute + queries,
        all under one registry, with zero dense unfoldings."""
        registry = MetricsRegistry()
        with use_metrics(registry):
            cat = StudyCatalog(tmp_path / "serving")
            cat.register(
                "gamma", make_sparse((6, 5, 4), seed=3), ranks=[3, 3, 3],
                method="gram",
            )
            engine = cat.engine("gamma")
            engine.point((0, 0, 0))
            engine.point_batch(np.array([[1, 1, 1], [5, 4, 3]]))
            engine.slice(0, 2)
            assert registry.counter("tensor.dense_unfolds").value == 0

    def test_method_recorded_on_bundle(self, gram_catalog):
        bundle = gram_catalog.bundle("gamma")
        assert bundle.method == "gram"
        assert gram_catalog.entry("gamma").method == "gram"

    def test_gram_answers_match_st_hosvd(self, tmp_path):
        """The gram bundle is a Gram-route ST-HOSVD: its factor-space
        answers agree with a directly computed ST-HOSVD to numerical
        precision (only the subspace-extraction route differs)."""
        from repro.tensor import st_hosvd

        tensor = make_sparse((6, 5, 4), seed=4)
        reference = st_hosvd(tensor, (3, 3, 3)).reconstruct()
        cat = StudyCatalog(tmp_path / "serving")
        cat.register("g", tensor, ranks=[3, 3, 3], method="gram")
        engine = cat.engine("g")
        coords = np.array([[0, 0, 0], [5, 4, 3], [2, 2, 2], [3, 1, 0]])
        gram_answers = engine.point_batch(coords)
        expected = reference[tuple(coords.T)]
        assert np.allclose(gram_answers, expected, atol=1e-8)

    def test_methods_get_distinct_fingerprints(self, tmp_path):
        tensor = make_sparse((5, 4, 3), seed=5)
        cat = StudyCatalog(tmp_path / "serving")
        cat.register("h", tensor, ranks=[2, 2, 2], method="hosvd")
        cat.register("g", tensor, ranks=[2, 2, 2], method="gram")
        assert (
            cat.bundle("h").fingerprint != cat.bundle("g").fingerprint
        )

    def test_unknown_method_rejected(self, tmp_path):
        from repro.serving.bundle import compute_bundle

        with pytest.raises(ServingError, match="method"):
            compute_bundle("x", None, None, [2, 2, 2], method="turbo")
