"""``python -m repro.serving`` command surface."""

import json

import numpy as np
import pytest

from repro.serving import StudyCatalog
from repro.serving.cli import main

from .conftest import make_sparse


@pytest.fixture()
def root(tmp_path):
    catalog = StudyCatalog(tmp_path / "root")
    catalog.register(
        "alpha", make_sparse((6, 5, 4), seed=1), ranks=[3, 3, 3]
    )
    catalog.register(
        "beta", make_sparse((4, 4, 3, 3), seed=2), ranks=[2, 2, 2, 2]
    )
    return str(tmp_path / "root")


def test_catalog_lists_studies(root, capsys):
    assert main(["catalog", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "beta" in out
    assert "6x5x4" in out


def test_catalog_empty(tmp_path, capsys):
    StudyCatalog(tmp_path / "fresh")
    assert main(["catalog", "--root", str(tmp_path / "fresh")]) == 0
    assert "no studies" in capsys.readouterr().out


def test_query_point(root, capsys):
    assert main(
        ["query", "--root", root, "--study", "alpha", "point", "1,2,3"]
    ) == 0
    value = float(capsys.readouterr().out.strip())
    expected = StudyCatalog(root).engine("alpha").point((1, 2, 3))
    assert value == pytest.approx(expected, rel=1e-9)


def test_query_slice(root, capsys):
    assert main(
        ["query", "--root", root, "--study", "alpha", "slice", "0", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "shape: (5, 4)" in out


def test_query_topk(root, capsys):
    assert main(
        ["query", "--root", root, "--study", "beta", "topk", "3"]
    ) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3
    assert "residual=" in lines[0]


def test_query_errors_are_exit_code_2(root, capsys):
    assert main(
        ["query", "--root", root, "--study", "nope", "point", "0,0,0"]
    ) == 2
    assert "not registered" in capsys.readouterr().err
    assert main(
        ["query", "--root", root, "--study", "alpha", "point", "9,9,9"]
    ) == 2
    assert "out of bounds" in capsys.readouterr().err


def test_serve_prints_summary(root, capsys):
    assert main(
        ["serve", "--root", root, "--clients", "10", "--queries", "3",
         "--seed", "1"]
    ) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["load"]["answered"] == 30
    assert summary["stats"]["served"] == 30


def test_serve_unbatched_control(root, capsys):
    assert main(
        ["serve", "--root", root, "--clients", "5", "--queries", "2",
         "--no-batching"]
    ) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["stats"]["batches"] == summary["stats"]["served"]


def test_serve_with_metrics_export(root, tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert main(
        ["serve", "--root", root, "--clients", "4", "--queries", "2",
         "--metrics", str(metrics_path)]
    ) == 0
    capsys.readouterr()
    # the export is the process-wide registry (shared across the test
    # session), so assert presence and shape, not absolute values
    metrics = json.loads(metrics_path.read_text())
    assert metrics["serving.served"]["value"] >= 8
    assert np.isfinite(metrics["serving.latency_seconds"]["p99"])
