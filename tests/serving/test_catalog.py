"""StudyCatalog: registration, sharding, persistence, invalidation."""

import numpy as np
import pytest

from repro.exceptions import ServingError, StudyNotFoundError
from repro.serving import StudyCatalog

from .conftest import make_sparse


class TestRegistration:
    def test_register_and_lookup(self, catalog):
        assert catalog.keys() == ["alpha", "beta"]
        assert "alpha" in catalog and len(catalog) == 2
        entry = catalog.entry("alpha")
        assert entry.shape == (6, 5, 4)
        assert entry.ranks == (3, 3, 3)
        assert entry.method == "hosvd"

    @pytest.mark.parametrize("bad", ["", "a/b", "a b", "a:b", "../x"])
    def test_invalid_key(self, catalog, bad):
        with pytest.raises(ServingError, match="invalid study key"):
            catalog.register(bad, make_sparse((3, 3, 3)), ranks=[2, 2, 2])

    def test_duplicate_needs_overwrite(self, catalog):
        tensor = make_sparse((6, 5, 4), seed=9)
        with pytest.raises(ServingError, match="already registered"):
            catalog.register("alpha", tensor, ranks=[2, 2, 2])
        entry = catalog.register(
            "alpha", tensor, ranks=[2, 2, 2], overwrite=True
        )
        assert entry.ranks == (2, 2, 2)

    def test_rank_arity_mismatch(self, catalog):
        with pytest.raises(ServingError, match="ranks"):
            catalog.register(
                "gamma", make_sparse((3, 3, 3)), ranks=[2, 2]
            )

    def test_unknown_study_is_typed(self, catalog):
        with pytest.raises(StudyNotFoundError) as excinfo:
            catalog.entry("nope")
        assert excinfo.value.study == "nope"
        with pytest.raises(StudyNotFoundError):
            catalog.store_for("nope")


class TestSharding:
    def test_each_study_gets_its_own_store(self, catalog):
        alpha = catalog.store_for("alpha")
        beta = catalog.store_for("beta")
        assert alpha is not beta
        assert alpha.directory != beta.directory
        assert alpha.directory == catalog.shard_dir("alpha")
        # both shards have their own catalog file and block files
        for store in (alpha, beta):
            assert (store.directory / "catalog.json").exists()
            assert store.catalog.get("ensemble").nnz > 0

    def test_store_instance_is_cached(self, catalog):
        assert catalog.store_for("alpha") is catalog.store_for("alpha")


class TestPersistence:
    def test_reload_from_disk(self, catalog):
        reloaded = StudyCatalog(catalog.root)
        assert reloaded.keys() == catalog.keys()
        assert reloaded.entry("beta") == catalog.entry("beta")
        # and the reloaded catalog actually serves
        engine = reloaded.engine("alpha")
        assert engine.shape == (6, 5, 4)

    def test_corrupt_studies_file(self, catalog):
        catalog.path.write_text("{nope")
        with pytest.raises(ServingError, match="cannot read"):
            StudyCatalog(catalog.root)

    def test_unregister(self, catalog):
        entry = catalog.unregister("alpha")
        assert entry.key == "alpha"
        assert "alpha" not in catalog
        assert "alpha" not in StudyCatalog(catalog.root)
        with pytest.raises(StudyNotFoundError):
            catalog.entry("alpha")


class TestBundleLifecycle:
    def test_engine_serves_from_hot_cache(self, catalog):
        catalog.engine("alpha")
        before = catalog.hot_factors.stats.misses
        catalog.engine("alpha")
        assert catalog.hot_factors.stats.misses == before
        assert catalog.hot_factors.stats.hits >= 1

    def test_reregistration_invalidates_stale_factors(self, catalog):
        index = (0, 0, 0)
        old_value = catalog.engine("alpha").point(index)
        tensor = make_sparse((6, 5, 4), seed=77)
        tensor.values[:] = tensor.values + 100.0
        catalog.register(
            "alpha", tensor, ranks=[3, 3, 3], overwrite=True
        )
        new_value = catalog.engine("alpha").point(index)
        # fresh data must flow through immediately — a stale hot
        # bundle would still answer with the old factors
        assert new_value != pytest.approx(old_value, abs=1e-6)
        dense = np.zeros(tensor.shape)
        dense[tuple(tensor.coords.T)] = tensor.values
        assert abs(new_value) > 1.0  # reflects the +100 shift
