"""Cross-mode pattern extraction."""

import numpy as np
import pytest

from repro.analysis import (
    core_energy_spectrum,
    describe_patterns,
    dominant_patterns,
    energy_rank,
)
from repro.exceptions import ShapeError
from repro.tensor import TuckerTensor, hosvd, random_low_rank


@pytest.fixture()
def model(rng):
    tensor = random_low_rank((6, 6, 6), (3, 3, 3), seed=4)
    return hosvd(tensor, (3, 3, 3))


class TestCoreEnergySpectrum:
    def test_sums_to_one(self, model):
        spectrum = core_energy_spectrum(model)
        assert spectrum.sum() == pytest.approx(1.0)
        assert (np.diff(spectrum) <= 1e-15).all()

    def test_rejects_zero_core(self):
        model = TuckerTensor(np.zeros((2, 2)), [np.eye(3, 2), np.eye(3, 2)])
        with pytest.raises(ShapeError):
            core_energy_spectrum(model)


class TestEnergyRank:
    def test_monotone_in_threshold(self, model):
        assert energy_rank(model, 0.5) <= energy_rank(model, 0.99)

    def test_full_threshold_bounded_by_core_size(self, model):
        assert energy_rank(model, 1.0) <= model.core.size

    def test_rejects_bad_threshold(self, model):
        with pytest.raises(ShapeError):
            energy_rank(model, 0.0)


class TestDominantPatterns:
    def test_count_and_ordering(self, model):
        patterns = dominant_patterns(model, count=4)
        assert len(patterns) == 4
        strengths = [abs(p.strength) for p in patterns]
        assert strengths == sorted(strengths, reverse=True)

    def test_shares_bounded(self, model):
        patterns = dominant_patterns(model, count=3)
        assert all(0 <= p.share <= 1 for p in patterns)

    def test_anchors_reference_real_indices(self, model):
        for pattern in dominant_patterns(model, count=2):
            assert len(pattern.anchors) == model.ndim
            for mode, (index, _loading) in enumerate(pattern.anchors):
                assert 0 <= index < model.shape[mode]

    def test_superdiagonal_core_patterns(self):
        """A diagonal core must yield the diagonal as top patterns."""
        core = np.zeros((2, 2, 2))
        core[0, 0, 0] = 10.0
        core[1, 1, 1] = 5.0
        factors = [np.eye(4, 2) for _ in range(3)]
        model = TuckerTensor(core, factors)
        patterns = dominant_patterns(model, count=2)
        assert patterns[0].components == (0, 0, 0)
        assert patterns[1].components == (1, 1, 1)
        assert patterns[0].share == pytest.approx(100 / 125)

    def test_rejects_bad_count(self, model):
        with pytest.raises(ShapeError):
            dominant_patterns(model, count=0)


class TestDescribe:
    def test_render_contains_names(self, model):
        patterns = dominant_patterns(model, count=2)
        text = describe_patterns(patterns, mode_names=["x", "y", "z"])
        assert "#1" in text and "#2" in text
        assert "x@" in text

    def test_render_without_names(self, model):
        text = describe_patterns(dominant_patterns(model, count=1))
        assert "mode0@" in text
