"""Factor interpretation helpers."""

import numpy as np
import pytest

from repro.analysis import (
    component_loadings,
    index_loadings,
    participation_ratio,
    summarize_factors,
    summarize_mode,
    top_indices,
)
from repro.exceptions import ModeError, ShapeError
from repro.tensor import TuckerTensor, hosvd, outer


def spike_tensor():
    """A tensor dominated by one index per mode."""
    u = np.array([5.0, 0.1, 0.1, 0.1])
    v = np.array([0.1, 4.0, 0.1, 0.1])
    w = np.array([0.1, 0.1, 3.0, 0.1])
    return outer([u, v, w])


class TestIndexLoadings:
    def test_detects_dominant_index(self):
        tucker = hosvd(spike_tensor(), (2, 2, 2))
        assert np.argmax(index_loadings(tucker, 0)) == 0
        assert np.argmax(index_loadings(tucker, 1)) == 1
        assert np.argmax(index_loadings(tucker, 2)) == 2

    def test_loadings_match_slab_norms_for_orthonormal_factors(self, rng):
        tensor = rng.standard_normal((5, 6, 4))
        tucker = hosvd(tensor, (5, 6, 4))  # full rank, exact
        loadings = index_loadings(tucker, 0)
        slab_norms = np.linalg.norm(
            tensor.reshape(5, -1), axis=1
        )
        assert np.allclose(loadings, slab_norms, atol=1e-8)

    def test_negative_mode(self, rng):
        tucker = hosvd(rng.standard_normal((4, 4, 4)), (2, 2, 2))
        assert np.allclose(
            index_loadings(tucker, -1), index_loadings(tucker, 2)
        )

    def test_rejects_bad_mode(self, rng):
        tucker = hosvd(rng.standard_normal((4, 4)), (2, 2))
        with pytest.raises(ModeError):
            index_loadings(tucker, 5)


class TestTopIndices:
    def test_spike_is_top(self):
        tucker = hosvd(spike_tensor(), (2, 2, 2))
        top = top_indices(tucker, 0, component=0, count=2)
        assert top[0][0] == 0
        assert abs(top[0][1]) >= abs(top[1][1])

    def test_rejects_bad_component(self):
        tucker = hosvd(spike_tensor(), (2, 2, 2))
        with pytest.raises(ModeError):
            top_indices(tucker, 0, component=7)

    def test_component_loadings_shape(self):
        tucker = hosvd(spike_tensor(), (2, 2, 2))
        assert component_loadings(tucker, 1).shape == (4, 2)


class TestParticipationRatio:
    def test_uniform_is_one(self):
        assert participation_ratio(np.ones(8)) == pytest.approx(1.0)

    def test_spike_is_one_over_n(self):
        weights = np.zeros(8)
        weights[3] = 5.0
        assert participation_ratio(weights) == pytest.approx(1 / 8)

    def test_zero_weights(self):
        assert participation_ratio(np.zeros(4)) == 1.0


class TestSummaries:
    def test_summarize_mode(self):
        tucker = hosvd(spike_tensor(), (2, 2, 2))
        summary = summarize_mode(tucker, 0, name="phi1")
        assert summary.dominant_index == 0
        assert summary.name == "phi1"
        assert 0 < summary.concentration <= 1
        assert "phi1" in summary.describe()

    def test_summarize_factors_names(self):
        tucker = hosvd(spike_tensor(), (2, 2, 2))
        summaries = summarize_factors(tucker, ["a", "b", "c"])
        assert [s.name for s in summaries] == ["a", "b", "c"]

    def test_summarize_factors_rejects_bad_names(self):
        tucker = hosvd(spike_tensor(), (2, 2, 2))
        with pytest.raises(ShapeError):
            summarize_factors(tucker, ["a"])
