"""Subspace comparison tools."""

import numpy as np
import pytest

from repro.analysis import (
    factor_recovery,
    principal_angles,
    subspace_affinity,
    truth_decomposition,
)
from repro.exceptions import ShapeError
from repro.tensor import hosvd, random_low_rank, random_orthonormal


class TestPrincipalAngles:
    def test_identical_subspaces(self):
        q = random_orthonormal(8, 3, seed=0)
        angles = principal_angles(q, q)
        assert np.allclose(angles, 0, atol=1e-7)

    def test_invariant_to_basis_change(self, rng):
        q = random_orthonormal(8, 3, seed=1)
        rotation = np.linalg.qr(rng.standard_normal((3, 3)))[0]
        angles = principal_angles(q, q @ rotation)
        assert np.allclose(angles, 0, atol=1e-7)

    def test_orthogonal_subspaces(self):
        a = np.eye(6)[:, :2]
        b = np.eye(6)[:, 2:4]
        angles = principal_angles(a, b)
        assert np.allclose(angles, np.pi / 2, atol=1e-10)

    def test_partial_overlap(self):
        a = np.eye(6)[:, :2]
        b = np.eye(6)[:, 1:3]  # shares one direction
        angles = principal_angles(a, b)
        assert angles[0] == pytest.approx(0.0, abs=1e-10)
        assert angles[1] == pytest.approx(np.pi / 2, abs=1e-10)

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            principal_angles(np.eye(4)[:, :2], np.eye(5)[:, :2])


class TestSubspaceAffinity:
    def test_bounds(self):
        a = np.eye(6)[:, :2]
        assert subspace_affinity(a, a) == pytest.approx(1.0)
        b = np.eye(6)[:, 2:4]
        assert subspace_affinity(a, b) == pytest.approx(0.0, abs=1e-10)

    def test_partial(self):
        a = np.eye(6)[:, :2]
        b = np.eye(6)[:, 1:3]
        assert subspace_affinity(a, b) == pytest.approx(0.5)


class TestFactorRecovery:
    def test_self_recovery_is_perfect(self):
        tensor = random_low_rank((6, 7, 8), (2, 2, 2), seed=2)
        model = hosvd(tensor, (2, 2, 2))
        recoveries = factor_recovery(model, model)
        assert all(r.affinity == pytest.approx(1.0) for r in recoveries)
        assert all(r.worst_angle_degrees < 1e-4 for r in recoveries)

    def test_mode_map_permutes(self):
        tensor = random_low_rank((6, 7, 8), (2, 2, 2), seed=3)
        model = hosvd(tensor, (2, 2, 2))
        permuted = hosvd(np.transpose(tensor, (2, 0, 1)), (2, 2, 2))
        recoveries = factor_recovery(permuted, model, mode_map=[2, 0, 1])
        assert all(r.affinity > 0.999 for r in recoveries)

    def test_rejects_bad_mode_map(self):
        tensor = random_low_rank((5, 5, 5), (2, 2, 2), seed=4)
        model = hosvd(tensor, (2, 2, 2))
        with pytest.raises(ShapeError):
            factor_recovery(model, model, mode_map=[0, 1])

    def test_truth_decomposition(self):
        tensor = random_low_rank((5, 5, 5), (2, 2, 2), seed=5)
        reference = truth_decomposition(tensor, (2, 2, 2))
        assert reference.relative_error(tensor) < 1e-9
