"""Cluster cost model: scheduling and scaling shapes."""

import pytest

from repro.distributed import ClusterModel, lpt_makespan
from repro.distributed.mapreduce import JobStats, TaskStats
from repro.exceptions import MapReduceError


class TestLptMakespan:
    def test_single_server_sums(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_servers_takes_max(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_greedy_split(self):
        # LPT places 3,3 on different servers, then 2,2,2 alternating:
        # loads (3+2+2, 3+2) -> makespan 7 (optimal would be 6; LPT is
        # a 7/6-approximation and that is fine for the cost model).
        assert lpt_makespan([3.0, 3.0, 2.0, 2.0, 2.0], 2) == pytest.approx(7.0)

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_rejects_no_servers(self):
        with pytest.raises(MapReduceError):
            lpt_makespan([1.0], 0)


def stats_with(durations, shuffle_bytes=0):
    stats = JobStats(name="test")
    stats.reduce_tasks = [
        TaskStats(task_id=f"r{i}", compute_seconds=d)
        for i, d in enumerate(durations)
    ]
    stats.shuffle_bytes = shuffle_bytes
    return stats


class TestClusterModel:
    def test_rejects_no_servers(self):
        with pytest.raises(MapReduceError):
            ClusterModel(n_servers=0)

    def test_more_servers_never_slower(self):
        stats = stats_with([0.5] * 16, shuffle_bytes=10 * 1024 * 1024)
        times = [
            ClusterModel(n_servers=s).job_time(stats) for s in (1, 2, 4, 8, 16)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_diminishing_returns(self):
        stats = stats_with([0.5] * 16, shuffle_bytes=10 * 1024 * 1024)
        t1 = ClusterModel(n_servers=1).job_time(stats)
        t4 = ClusterModel(n_servers=4).job_time(stats)
        t16 = ClusterModel(n_servers=16).job_time(stats)
        assert (t1 - t4) > (t4 - t16)

    def test_overhead_floors_scaling(self):
        stats = stats_with([0.001] * 4)
        model = ClusterModel(n_servers=100, task_overhead_seconds=0.05)
        assert model.job_time(stats) >= 0.05

    def test_shuffle_time_scales_with_bytes(self):
        model = ClusterModel(n_servers=1)
        assert model.shuffle_time(2 * 1024 * 1024) == pytest.approx(
            2 * model.network_seconds_per_mb
        )

    def test_network_scaling_exponent(self):
        base = ClusterModel(n_servers=4, network_scaling=0.0)
        scaled = ClusterModel(n_servers=4, network_scaling=1.0)
        stats_bytes = 8 * 1024 * 1024
        assert scaled.shuffle_time(stats_bytes) == pytest.approx(
            base.shuffle_time(stats_bytes) / 4
        )
