"""D-M2TD: distributed must equal single-node, phases must account."""

import numpy as np
import pytest

from repro.core.m2td import m2td_decompose
from repro.distributed import ClusterModel, distributed_m2td
from repro.exceptions import MapReduceError
from repro.sampling import PFPartition
from repro.tensor import SparseTensor

SHAPE = (4, 4, 4, 4, 4)
RANKS = [2] * 5


def partition():
    return PFPartition(SHAPE, (4,), (0, 1), (2, 3))


@pytest.fixture()
def subs(rng):
    part = partition()
    x1 = SparseTensor.from_dense(
        rng.standard_normal(part.sub_shape(1)) + 2.0, keep_zeros=True
    )
    x2 = SparseTensor.from_dense(
        rng.standard_normal(part.sub_shape(2)) + 2.0, keep_zeros=True
    )
    return part, x1, x2


class TestEquivalence:
    @pytest.mark.parametrize("variant", ["avg", "select"])
    def test_matches_single_node(self, subs, variant):
        part, x1, x2 = subs
        local = m2td_decompose(x1, x2, part, RANKS, variant=variant)
        dist = distributed_m2td(x1, x2, part, RANKS, variant=variant)
        assert np.allclose(local.tucker.core, dist.result.tucker.core)
        for a, b in zip(local.tucker.factors, dist.result.tucker.factors):
            assert np.allclose(a, b)

    def test_zero_join_matches(self, subs, rng):
        part, _x1_full, _x2_full = subs
        # Sparse random sub-ensembles exercise the zero-join path.
        def random_sub(which, seed):
            shape = part.sub_shape(which)
            gen = np.random.default_rng(seed)
            size = int(np.prod(shape))
            flat = gen.choice(size, size=12, replace=False)
            coords = np.stack(np.unravel_index(flat, shape), axis=1)
            return SparseTensor(shape, coords, gen.standard_normal(12) + 1)

        x1, x2 = random_sub(1, 5), random_sub(2, 6)
        local = m2td_decompose(
            x1, x2, part, RANKS, variant="select", join_kind="zero"
        )
        dist = distributed_m2td(
            x1, x2, part, RANKS, variant="select", join_kind="zero"
        )
        assert np.allclose(
            local.tucker.core, dist.result.tucker.core, atol=1e-10
        )
        assert dist.result.join_nnz == local.join_nnz

    def test_concat_rejected(self, subs):
        part, x1, x2 = subs
        with pytest.raises(MapReduceError):
            distributed_m2td(x1, x2, part, RANKS, variant="concat")


class TestPhaseAccounting:
    def test_phase_stats_present(self, subs):
        part, x1, x2 = subs
        dist = distributed_m2td(x1, x2, part, RANKS)
        assert set(dist.job_stats) == {"phase1", "phase2", "phase3"}
        # one reduce task per sub-tensor in phase 1
        assert len(dist.job_stats["phase1"].reduce_tasks) == 2
        # one reduce task per pivot configuration in phases 2 and 3
        assert len(dist.job_stats["phase2"].reduce_tasks) == 4
        assert len(dist.job_stats["phase3"].reduce_tasks) == 4

    def test_phase_times_positive_and_scaling(self, subs):
        part, x1, x2 = subs
        dist = distributed_m2td(x1, x2, part, RANKS)
        t1 = dist.total_time(ClusterModel(n_servers=1))
        t18 = dist.total_time(ClusterModel(n_servers=18))
        assert t1 > t18 > 0
