"""Distributed trace stitching, end to end against live workers.

The contract under test: a traced D-M2TD run over external worker
processes produces ONE merged trace — every worker-side map/reduce
span sits under the ``dispatch:<task>`` span that caused it, carrying
worker/pid attribution — and the merged span tree and counter totals
are deterministic: byte-identical canonical signatures at 1, 2 and 4
workers, counter totals equal to the inline-transport run.  With
tracing off, nothing is collected or shipped at all.
"""

from repro.distributed import LocalMapReduceEngine, distributed_m2td
from repro.distributed.workers.protocol import TaskMessage
from repro.distributed.workers.transport import execute_task
from repro.observability import (
    EventLog,
    MetricsRegistry,
    Tracer,
    merged_trace_signature,
    use_event_log,
    use_metrics,
    use_tracer,
)

#: Counters whose totals must not depend on the execution venue.
VENUE_INVARIANT_COUNTERS = (
    "svd.calls",
    "tensor.dense_unfolds",
    "mapreduce.jobs",
)


def traced_run(dm2td_inputs, workers, transport="process"):
    """One traced D-M2TD run; returns (tracer, registry, events, run)."""
    x1, x2, part, ranks = dm2td_inputs
    tracer, registry, events = Tracer(), MetricsRegistry(), EventLog()
    with use_tracer(tracer), use_metrics(registry), use_event_log(events):
        engine = LocalMapReduceEngine(
            workers,
            transport=transport,
            heartbeat_seconds=0.1,
            lease_seconds=5.0,
        )
        try:
            run = distributed_m2td(x1, x2, part, ranks, engine=engine)
        finally:
            engine.close()
    return tracer, registry, events, run


def counter_totals(registry):
    state = registry.as_dict()
    return {
        name: state[name]["value"]
        for name in VENUE_INVARIANT_COUNTERS
        if name in state
    }


class TestMergedTrace:
    def test_worker_spans_under_dispatch_with_attribution(
        self, dm2td_inputs
    ):
        tracer, registry, events, _ = traced_run(dm2td_inputs, workers=2)
        dispatches = [
            span for span in tracer.iter_spans()
            if span.name.startswith("dispatch:")
        ]
        assert dispatches, "no dispatch spans recorded"
        merged = [d for d in dispatches if d.children]
        assert merged, "no worker telemetry merged under any dispatch"
        pids = set()
        for dispatch in merged:
            assert dispatch.category == "worker"
            window_hi = dispatch.started + dispatch.wall_seconds
            for child in dispatch.children:
                assert child.process_id > 0
                assert child.process_name.startswith("worker.")
                assert dispatch.started <= child.started <= window_hi
                assert child.started + child.wall_seconds <= window_hi + 1e-9
                pids.add(child.process_id)
        assert len(pids) == 2, "expected spans from 2 worker processes"
        # Per-worker counter attribution rode home with the spans.
        attributed = [
            name for name in registry.names()
            if name.startswith("worker.0.") or name.startswith("worker.1.")
        ]
        assert attributed, "no worker.<id>.* attributed counters"
        # And the workers' buffered events replayed into the parent log.
        assert events.records(event="worker.dispatch")

    def test_merged_signature_identical_across_worker_counts(
        self, dm2td_inputs
    ):
        signatures, totals = {}, {}
        for workers in (1, 2, 4):
            tracer, registry, _, _ = traced_run(dm2td_inputs, workers)
            signatures[workers] = merged_trace_signature(tracer)
            totals[workers] = counter_totals(registry)
        assert signatures[1] != "[]"
        assert signatures[2] == signatures[1]
        assert signatures[4] == signatures[1]
        assert totals[2] == totals[1]
        assert totals[4] == totals[1]

    def test_counter_totals_match_inline_transport(self, dm2td_inputs):
        _, external_registry, _, external = traced_run(
            dm2td_inputs, workers=2, transport="process"
        )
        _, inline_registry, _, inline = traced_run(
            dm2td_inputs, workers=2, transport="inline"
        )
        assert counter_totals(external_registry) == counter_totals(
            inline_registry
        )
        # Same decomposition, to the byte.
        assert (
            external.result.tucker.core.tobytes()
            == inline.result.tucker.core.tobytes()
        )


class TestDisabledPathShipsNothing:
    """The NullTracer guard: no tracer, no telemetry — collected,
    encoded, or shipped."""

    def test_untraced_task_reply_carries_no_telemetry(self):
        message = TaskMessage(task_id="t0", payload=lambda: 41)
        reply = execute_task(message, worker_id="worker-0")
        assert reply.telemetry is None
        assert reply.telemetry_digest == ""

    def test_untraced_run_records_no_dispatch_spans(self, dm2td_inputs):
        x1, x2, part, ranks = dm2td_inputs
        registry = MetricsRegistry()
        with use_metrics(registry):
            engine = LocalMapReduceEngine(
                2, transport="process", heartbeat_seconds=0.1
            )
            try:
                distributed_m2td(x1, x2, part, ranks, engine=engine)
            finally:
                engine.close()
        # No per-worker attribution: nothing was shipped home.
        assert not [
            name for name in registry.names()
            if name.startswith("worker.0.") or name.startswith("worker.1.")
        ]
        assert "worker.telemetry_dropped" not in registry.names()
