"""The local MapReduce engine: semantics and accounting."""

import numpy as np
import pytest

from repro.distributed import (
    LocalMapReduceEngine,
    MapReduceJob,
    payload_bytes,
)
from repro.exceptions import MapReduceError


def word_count_job():
    def map_fn(_key, line):
        for word in line.split():
            yield word, 1

    def reduce_fn(word, counts):
        yield word, sum(counts)

    return MapReduceJob(name="wordcount", map_fn=map_fn, reduce_fn=reduce_fn)


class TestEngine:
    def test_word_count(self):
        engine = LocalMapReduceEngine()
        records = [(i, line) for i, line in enumerate(
            ["a b a", "b c", "a"]
        )]
        output, stats = engine.run(word_count_job(), records)
        counts = dict(output)
        assert counts == {"a": 3, "b": 2, "c": 1}
        assert stats.name == "wordcount"

    def test_identity_map_when_none(self):
        job = MapReduceJob(
            name="sum", reduce_fn=lambda key, values: [(key, sum(values))]
        )
        output, _stats = engine_run(job, [("x", 1), ("x", 2), ("y", 5)])
        assert dict(output) == {"x": 3, "y": 5}

    def test_no_reduce_passthrough(self):
        job = MapReduceJob(
            name="flatten",
            map_fn=lambda key, value: [(key, value), (key, value * 2)],
        )
        output, _stats = engine_run(job, [("k", 3)])
        assert sorted(v for _k, v in output) == [3, 6]

    def test_map_error_wrapped(self):
        job = MapReduceJob(
            name="boom", map_fn=lambda key, value: 1 / 0
        )
        with pytest.raises(MapReduceError, match="boom"):
            engine_run(job, [("k", 1)])

    def test_reduce_error_wrapped(self):
        job = MapReduceJob(
            name="boom2",
            reduce_fn=lambda key, values: (_ for _ in ()).throw(ValueError("x")),
        )
        with pytest.raises(MapReduceError, match="boom2"):
            engine_run(job, [("k", 1)])

    def test_task_stats_counts(self):
        engine = LocalMapReduceEngine()
        _out, stats = engine.run(
            word_count_job(), [(0, "a b"), (1, "a")]
        )
        assert sum(t.records_in for t in stats.map_tasks) == 2
        assert sum(t.records_out for t in stats.map_tasks) == 3
        assert len(stats.reduce_tasks) == 2  # keys a, b
        assert stats.shuffle_bytes > 0

    def test_map_task_splitting(self):
        job = MapReduceJob(name="nop", map_fn=lambda k, v: [(k, v)], map_tasks=3)
        engine = LocalMapReduceEngine()
        _out, stats = engine.run(job, [(i, i) for i in range(7)])
        assert len(stats.map_tasks) == 3


def engine_run(job, records):
    return LocalMapReduceEngine().run(job, records)


def _count_map(key, line):
    for word in line.split():
        yield word, 1


def _count_reduce(word, counts):
    yield word, sum(counts)


def _drop_all_map(_key, _value):
    return []


def _picklable_count_job(map_tasks=2):
    return MapReduceJob(
        name="wordcount",
        map_fn=_count_map,
        reduce_fn=_count_reduce,
        map_tasks=map_tasks,
    )


class TestEdgeCases:
    """Degenerate inputs that once lived only in callers' heads:
    nothing to map, nothing to reduce, more workers than work."""

    @pytest.fixture(params=["inline", "threads", "supervised"])
    def any_engine(self, request):
        if request.param == "inline":
            engine = LocalMapReduceEngine()
        elif request.param == "threads":
            engine = LocalMapReduceEngine(4)
        else:
            engine = LocalMapReduceEngine(2, transport="process")
        yield engine
        engine.close()

    def test_empty_record_list(self, any_engine):
        output, stats = any_engine.run(_picklable_count_job(), [])
        assert output == []
        assert stats.reduce_tasks == []
        assert sum(t.records_in for t in stats.map_tasks) == 0

    def test_reduce_with_zero_keys(self, any_engine):
        job = MapReduceJob(
            name="void", map_fn=_drop_all_map, reduce_fn=_count_reduce
        )
        output, stats = any_engine.run(job, [(0, "a"), (1, "b")])
        assert output == []
        assert stats.reduce_tasks == []
        assert sum(t.records_in for t in stats.map_tasks) == 2
        assert sum(t.records_out for t in stats.map_tasks) == 0

    def test_more_workers_than_records(self, any_engine):
        output, stats = any_engine.run(
            _picklable_count_job(map_tasks=8), [(0, "solo")]
        )
        assert dict(output) == {"solo": 1}
        # splitting one record across 8 map tasks must not create
        # phantom work or drop the record
        assert sum(t.records_in for t in stats.map_tasks) == 1

    def test_many_workers_agree_with_sequential(self):
        records = [(i, "a b c a") for i in range(3)]
        sequential, _ = LocalMapReduceEngine(1).run(
            _picklable_count_job(), records
        )
        wide = LocalMapReduceEngine(16)
        try:
            parallel_out, _ = wide.run(_picklable_count_job(), records)
        finally:
            wide.close()
        assert parallel_out == sequential


class TestThreadedEngine:
    def test_equivalent_to_sequential(self):
        sequential, _s1 = LocalMapReduceEngine(n_workers=1).run(
            word_count_job(), [(i, "a b c a") for i in range(10)]
        )
        threaded, _s2 = LocalMapReduceEngine(n_workers=4).run(
            word_count_job(), [(i, "a b c a") for i in range(10)]
        )
        assert sorted(sequential) == sorted(threaded)

    def test_stats_equivalent(self):
        records = [(i, f"w{i % 3} common") for i in range(9)]
        _out1, s1 = LocalMapReduceEngine(1).run(word_count_job(), records)
        _out2, s2 = LocalMapReduceEngine(4).run(word_count_job(), records)
        assert len(s1.reduce_tasks) == len(s2.reduce_tasks)
        assert s1.shuffle_bytes == s2.shuffle_bytes

    def test_errors_propagate_from_threads(self):
        job = MapReduceJob(
            name="boom3",
            reduce_fn=lambda key, values: (_ for _ in ()).throw(ValueError()),
        )
        with pytest.raises(MapReduceError, match="boom3"):
            LocalMapReduceEngine(4).run(job, [("k", 1), ("j", 2)])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(MapReduceError):
            LocalMapReduceEngine(0)

    def test_outputs_byte_identical_across_worker_counts(self):
        import pickle

        records = [(i, f"alpha beta w{i % 5}") for i in range(20)]
        out1, s1 = LocalMapReduceEngine(1).run(word_count_job(), records)
        out4, s4 = LocalMapReduceEngine(4).run(word_count_job(), records)
        assert pickle.dumps(out1) == pickle.dumps(out4)
        assert [t.task_id for t in s1.map_tasks] == [
            t.task_id for t in s4.map_tasks
        ]
        assert [t.task_id for t in s1.reduce_tasks] == [
            t.task_id for t in s4.reduce_tasks
        ]

    def test_map_tasks_actually_run_concurrently(self):
        import threading

        barrier = threading.Barrier(2, timeout=5)

        def rendezvous(key, value):
            # Only passes if two map tasks are in flight at once.
            barrier.wait()
            yield key, value

        job = MapReduceJob(name="sync", map_fn=rendezvous, map_tasks=2)
        output, _stats = LocalMapReduceEngine(n_workers=2).run(
            job, [(0, "x"), (1, "y")]
        )
        assert sorted(output) == [(0, "x"), (1, "y")]

    def test_dm2td_agrees_across_worker_counts(
        self, dm2td_inputs, assert_identical_across_workers
    ):
        from repro.distributed import distributed_m2td

        x1, x2, part, ranks = dm2td_inputs
        assert_identical_across_workers(
            lambda workers: distributed_m2td(
                x1, x2, part, ranks, engine=LocalMapReduceEngine(workers)
            )
        )


class TestDeterminismWithTracing:
    """Worker count and tracing must both be invisible in the output:
    byte-identical results across --workers 1/2/4 with a live tracer."""

    def test_engine_byte_identical_across_workers_with_tracing(self):
        import pickle

        from repro.observability import Tracer, use_tracer

        records = [(i, f"alpha beta w{i % 5}") for i in range(20)]
        payloads, tracers = {}, {}
        for workers in (1, 2, 4):
            with use_tracer(Tracer()) as tracer:
                output, _stats = LocalMapReduceEngine(workers).run(
                    word_count_job(), records
                )
            payloads[workers] = pickle.dumps(output)
            tracers[workers] = tracer
        assert payloads[1] == payloads[2] == payloads[4]
        # The traced runs actually recorded map/reduce spans, with the
        # executing worker attributed on each one.
        spans = [
            s
            for s in tracers[4].iter_spans()
            if s.category == "mapreduce" and "worker" in s.attrs
        ]
        assert spans
        assert all(s.attrs["worker"] for s in spans)

    def test_dm2td_byte_identical_across_workers_with_tracing(
        self, dm2td_inputs, assert_identical_across_workers
    ):
        from repro.distributed import distributed_m2td
        from repro.observability import Tracer, use_tracer

        x1, x2, part, ranks = dm2td_inputs
        phase_cats = {}

        def run_traced(workers):
            with use_tracer(Tracer()) as tracer:
                run = distributed_m2td(
                    x1, x2, part, ranks,
                    engine=LocalMapReduceEngine(workers),
                )
            phase_cats[workers] = {s.category for s in tracer.iter_spans()}
            return run

        assert_identical_across_workers(run_traced)
        # Per-phase spans were recorded for every worker count.
        for workers in (1, 2, 4):
            assert {"decompose", "stitch", "stitch-factor"} <= (
                phase_cats[workers]
            )


class TestPayloadBytes:
    def test_ndarray(self):
        assert payload_bytes(np.zeros(10)) == 80

    def test_containers(self):
        assert payload_bytes((np.zeros(2), np.zeros(3))) == 16 + 24 + 8

    def test_string(self):
        assert payload_bytes("hello") == 5

    def test_scalar_flat_cost(self):
        assert payload_bytes(42) == 8

    def test_dict(self):
        assert payload_bytes({"a": np.zeros(1)}) == 1 + 8 + 8

    def test_numpy_scalars_use_their_itemsize(self):
        assert payload_bytes(np.float32(1.5)) == 4
        assert payload_bytes(np.int64(3)) == 8
        assert payload_bytes(np.bool_(True)) == 1
        assert payload_bytes(np.float64(0.0)) == 8

    def test_numpy_scalars_inside_containers(self):
        assert payload_bytes([np.float32(1.0), np.float32(2.0)]) == 8 + 8
