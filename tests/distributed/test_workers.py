"""Unit tests of the worker protocol: messages, transports, and the
supervisor's robustness contract (heartbeats, leases, respawns,
quarantine, degradation).

Chaos coverage over the full D-M2TD pipeline lives in
``tests/faults/test_chaos_workers.py``; here each mechanism is
exercised in isolation with cheap synthetic tasks.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import pytest

from repro.distributed.workers import (
    ErrorEnvelope,
    InlineTransport,
    ProcessTransport,
    ResultMessage,
    TaskOutcome,
    WorkerConfig,
    WorkerSupervisor,
    checksum,
    flip_bytes,
    make_transport,
)
from repro.exceptions import (
    CorruptReplyError,
    CrashBudgetError,
    FaultInjectionError,
    RemoteTaskError,
    WorkerProtocolError,
)
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.faults.directive import FaultDirective
from repro.observability import get_metrics


class Square:
    """A picklable task: returns x**2."""

    def __init__(self, x):
        self.x = x

    def __call__(self):
        return self.x * self.x


class Raises:
    def __init__(self, message="synthetic failure"):
        self.message = message

    def __call__(self):
        raise ValueError(self.message)


class Sleeps:
    def __init__(self, seconds):
        self.seconds = seconds

    def __call__(self):
        time.sleep(self.seconds)
        return "slept"


class SelfKill:
    """SIGKILLs its own process — a genuine mid-task worker death.

    Guarded by the supervisor's pid: when the task ends up running
    inline (quarantine or degraded mode), it must not take the test
    process down with it.
    """

    def __init__(self):
        self.parent_pid = os.getpid()

    def __call__(self):
        if os.getpid() != self.parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return "survived-inline"


def squares(n=6):
    return [(f"t{i}", Square(i)) for i in range(n)]


def expect_squares(outcomes, n=6):
    assert [o.value for o in outcomes] == [i * i for i in range(n)]
    assert all(o.ok for o in outcomes)


# ----------------------------------------------------------------------
# protocol pieces
# ----------------------------------------------------------------------
class TestProtocol:
    def test_result_roundtrip_verifies_checksum(self):
        payload = pickle.dumps({"a": 1})
        message = ResultMessage(
            task_id="t", worker_id="w", payload=payload,
            digest=checksum(payload),
        )
        assert message.value() == {"a": 1}

    def test_corrupt_payload_is_never_unpickled(self):
        payload = pickle.dumps([1, 2, 3])
        message = ResultMessage(
            task_id="t", worker_id="w", payload=flip_bytes(payload),
            digest=checksum(payload),
        )
        with pytest.raises(CorruptReplyError, match="checksum mismatch"):
            message.value()

    def test_flip_bytes_changes_payload(self):
        payload = b"x" * 64
        assert flip_bytes(payload) != payload
        assert len(flip_bytes(payload)) == len(payload)

    def test_envelope_rebuilds_original_exception(self):
        try:
            raise KeyError("missing-key")
        except KeyError as exc:
            envelope = ErrorEnvelope.capture("t", "w", exc)
        rebuilt = pickle.loads(pickle.dumps(envelope)).rebuild()
        assert isinstance(rebuilt, KeyError)
        assert "missing-key" in str(rebuilt)
        assert "KeyError" in rebuilt.remote_traceback

    def test_envelope_preserves_fault_provenance(self):
        exc = FaultInjectionError("mapreduce.map", "map-0", "fault-3",
                                  "note")
        envelope = ErrorEnvelope.capture("t", "w", exc)
        assert envelope.provenance is not None
        rebuilt = envelope.rebuild()
        assert isinstance(rebuilt, FaultInjectionError)
        assert rebuilt.site == "mapreduce.map"
        assert rebuilt.target == "map-0"
        assert rebuilt.fault_id == "fault-3"

    def test_unpicklable_exception_falls_back_to_strings(self):
        class Nasty(Exception):
            def __reduce__(self):
                raise TypeError("no pickling for me")

        envelope = ErrorEnvelope.capture("t", "w", Nasty("the real story"))
        assert envelope.pickled is None
        rebuilt = envelope.rebuild()
        assert isinstance(rebuilt, RemoteTaskError)
        assert rebuilt.type_name == "Nasty"
        assert "the real story" in str(rebuilt)
        assert "Nasty" in rebuilt.remote_traceback

    def test_make_transport_accepts_names_and_instances(self):
        assert make_transport("inline").kind == "inline"
        assert make_transport("process").kind == "process"
        transport = InlineTransport()
        assert make_transport(transport) is transport
        assert make_transport(ProcessTransport).kind == "process"
        with pytest.raises(WorkerProtocolError, match="unknown transport"):
            make_transport("carrier-pigeon")


# ----------------------------------------------------------------------
# supervisor happy paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["inline", "process"])
class TestSupervisorBasics:
    def test_results_in_submission_order(self, transport):
        with WorkerSupervisor(transport=transport, n_workers=3) as sup:
            expect_squares(sup.run_tasks(squares()))

    def test_pool_survives_multiple_batches(self, transport):
        with WorkerSupervisor(transport=transport, n_workers=2) as sup:
            expect_squares(sup.run_tasks(squares()))
            out = sup.run_tasks([("again", Square(9))])
            assert out[0].value == 81

    def test_task_error_is_per_outcome(self, transport):
        with WorkerSupervisor(transport=transport, n_workers=2) as sup:
            outcomes = sup.run_tasks(
                [("good", Square(2)), ("bad", Raises("oops"))]
            )
        assert outcomes[0].value == 4
        assert isinstance(outcomes[1].error, ValueError)
        assert "oops" in str(outcomes[1].error)

    def test_empty_batch(self, transport):
        with WorkerSupervisor(transport=transport, n_workers=2) as sup:
            assert sup.run_tasks([]) == []

    def test_shutdown_refuses_new_batches(self, transport):
        sup = WorkerSupervisor(transport=transport, n_workers=1)
        sup.shutdown()
        with pytest.raises(WorkerProtocolError, match="shut down"):
            sup.run_tasks(squares(2))


class TestSupervisorValidation:
    def test_rejects_bad_parameters(self):
        for kwargs in (
            {"n_workers": 0},
            {"heartbeat_seconds": 0},
            {"lease_seconds": -1.0},
            {"poison_lease_expiries": 0},
            {"crash_budget": -1},
        ):
            with pytest.raises(WorkerProtocolError):
                WorkerSupervisor(transport="inline", **kwargs)


# ----------------------------------------------------------------------
# the robustness contract
# ----------------------------------------------------------------------
class TestRecovery:
    def test_sigkilled_worker_is_replaced_and_task_requeued(self):
        """A real mid-task SIGKILL: the pipe EOF declares the death,
        the lease requeues, the respawned pool finishes the batch."""
        before = get_metrics().counter("worker.respawns").value
        with WorkerSupervisor(
            transport="process", n_workers=2, heartbeat_seconds=0.1,
            lease_seconds=2.0,
        ) as sup:
            tasks = [("kill", SelfKill())] + squares(4)
            outcomes = sup.run_tasks(tasks)
        # The suicide task kills every worker that leases it, consuming
        # the crash budget until it is finally settled inline; the
        # other tasks complete with correct values throughout.
        assert [o.value for o in outcomes[1:]] == [i * i for i in range(4)]
        assert outcomes[0].value == "survived-inline"
        assert get_metrics().counter("worker.respawns").value > before

    def test_lease_expiry_requeues_and_meters(self):
        before = get_metrics().counter("worker.lease_expiries").value
        with WorkerSupervisor(
            transport="process", n_workers=1, heartbeat_seconds=0.05,
            lease_seconds=0.3, poison_lease_expiries=2,
        ) as sup:
            outcomes = sup.run_tasks([("slow", Sleeps(1.0))])
        # First lease expires (requeue + respawn); the second expiry
        # quarantines the task, which then finishes inline.
        assert outcomes[0].value == "slept"
        assert outcomes[0].ran_inline
        assert get_metrics().counter("worker.lease_expiries").value > before

    def test_poison_task_is_quarantined_and_metered(self):
        before = get_metrics().counter("worker.poisoned").value
        with WorkerSupervisor(
            transport="process", n_workers=1, heartbeat_seconds=0.05,
            lease_seconds=0.2, poison_lease_expiries=1, crash_budget=5,
        ) as sup:
            outcomes = sup.run_tasks([("sleepy", Sleeps(0.6))])
        assert outcomes[0].value == "slept"
        assert outcomes[0].ran_inline
        assert get_metrics().counter("worker.poisoned").value > before

    def test_crash_budget_degrades_to_inline(self):
        plan = plan_of(
            [FaultSpec(site="worker.spawn", kind="raise",
                       target="worker-*", times=None)]
        )
        before = get_metrics().counter("worker.inline_fallbacks").value
        with use_injector(FaultInjector(plan)):
            with WorkerSupervisor(
                transport="process", n_workers=2, crash_budget=1,
            ) as sup:
                outcomes = sup.run_tasks(squares())
                assert sup.degraded
        expect_squares(outcomes)
        assert all(o.ran_inline for o in outcomes)
        assert get_metrics().counter("worker.inline_fallbacks").value > before

    def test_degraded_supervisor_stays_inline_for_later_batches(self):
        plan = plan_of(
            [FaultSpec(site="worker.spawn", kind="raise",
                       target="worker-*", times=None)]
        )
        with use_injector(FaultInjector(plan)):
            with WorkerSupervisor(
                transport="process", n_workers=1, crash_budget=0,
            ) as sup:
                sup.run_tasks(squares(2))
                assert sup.degraded
                out = sup.run_tasks([("later", Square(5))])
        assert out[0].value == 25
        assert out[0].ran_inline

    def test_exhausted_budget_raises_when_degradation_disabled(self):
        plan = plan_of(
            [FaultSpec(site="worker.spawn", kind="raise",
                       target="worker-*", times=None)]
        )
        with use_injector(FaultInjector(plan)):
            sup = WorkerSupervisor(
                transport="process", n_workers=1, crash_budget=0,
                degrade_to_inline=False,
            )
            with pytest.raises(CrashBudgetError):
                sup.run_tasks(squares(2))
            sup.shutdown()

    def test_corrupt_reply_is_requeued_never_unpickled(self):
        plan = plan_of(
            [FaultSpec(site="worker.result", kind="corrupt",
                       target="t1", times=1)]
        )
        before = get_metrics().counter("worker.corrupt_replies").value
        with use_injector(FaultInjector(plan)) as injector:
            with WorkerSupervisor(
                transport="process", n_workers=2, heartbeat_seconds=0.1,
            ) as sup:
                expect_squares(sup.run_tasks(squares()))
        assert injector.summary() == {"injected": 1, "recovered": 1}
        assert get_metrics().counter("worker.corrupt_replies").value > before

    def test_unpicklable_task_runs_inline(self):
        with WorkerSupervisor(transport="process", n_workers=1) as sup:
            outcomes = sup.run_tasks([("lam", lambda: 123)])
        assert outcomes[0].value == 123
        assert outcomes[0].ran_inline

    def test_heartbeat_silence_is_detected(self):
        """A worker whose beat loop goes silent while idle accrues
        heartbeat misses and is declared dead past the deadline —
        even though its process is still running."""
        plan = plan_of(
            [FaultSpec(site="worker.heartbeat", kind="delay",
                       target="worker-1", times=1, delay_seconds=30.0)]
        )
        before = get_metrics().counter("worker.heartbeat_misses").value
        with use_injector(FaultInjector(plan)):
            with WorkerSupervisor(
                transport="process", n_workers=2, heartbeat_seconds=0.05,
                heartbeat_misses=2, lease_seconds=5.0,
            ) as sup:
                # worker-0 holds the sleeper, keeping the batch alive
                # long enough for the silent worker-1 to miss beats.
                outcomes = sup.run_tasks(
                    [("slow", Sleeps(0.8)), ("fast", Square(2))]
                )
        assert outcomes[0].value == "slept"
        assert outcomes[1].value == 4
        assert get_metrics().counter("worker.heartbeat_misses").value > before


class TestOutcome:
    def test_outcome_ok_property(self):
        assert TaskOutcome(task_id="t", value=1).ok
        assert not TaskOutcome(task_id="t", error=ValueError()).ok


class TestWorkerConfigDirectives:
    def test_heartbeat_crash_directive_kills_inline_worker(self):
        directive = FaultDirective(
            site="worker.heartbeat", target="worker-0",
            fault_id="fault-0", kind="crash-worker",
        )
        handle = InlineTransport().spawn(
            WorkerConfig(worker_id="worker-0",
                         heartbeat_directive=directive)
        )
        assert not handle.alive()
