"""Tracer semantics: nesting, timing, threads, and the no-op default."""

import threading
import time

import pytest

from repro.observability import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)
from repro.observability.tracer import _NULL_SPAN


class TestNoOpDefault:
    def test_default_tracer_is_disabled(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert tracer.enabled is False

    def test_module_span_returns_shared_null_span(self):
        first = span("anything", "misc", shape=(3, 3))
        second = span("else", "decompose")
        assert first is _NULL_SPAN
        assert second is _NULL_SPAN

    def test_null_span_supports_protocol(self):
        with span("x", "misc") as sp:
            assert sp.set(nnz=3) is sp

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("a"):
            pass
        NULL_TRACER.record_span("b", "misc", 1.0)
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.n_spans == 0
        assert NULL_TRACER.total_wall_seconds() == 0.0


class TestRecording:
    def test_span_records_wall_and_cpu(self):
        tracer = Tracer()
        with tracer.span("work", "misc"):
            time.sleep(0.01)
        (root,) = tracer.roots()
        assert root.name == "work"
        assert root.wall_seconds >= 0.009
        assert root.cpu_seconds >= 0.0

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer", "decompose"):
                with span("inner-a", "tensor-op"):
                    pass
                with span("inner-b", "tensor-op"):
                    with span("leaf", "tensor-op"):
                        pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner-a", "inner-b"]
        assert [c.name for c in roots[0].children[1].children] == ["leaf"]
        assert tracer.n_spans == 4

    def test_attrs_and_mid_span_set(self):
        tracer = Tracer()
        with tracer.span("svd", "decompose", shape=(4, 5)) as sp:
            sp.set(rank=2)
        (root,) = tracer.roots()
        assert root.attrs == {"shape": (4, 5), "rank": 2}

    def test_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer", "misc") as outer:
            with tracer.span("inner", "misc"):
                time.sleep(0.01)
        assert outer.self_seconds <= outer.wall_seconds
        assert outer.self_seconds == pytest.approx(
            outer.wall_seconds
            - sum(c.wall_seconds for c in outer.children)
        )

    def test_error_captured_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", "misc"):
                raise ValueError("no")
        (root,) = tracer.roots()
        assert root.error == "ValueError"

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a", "misc"):
            with tracer.span("b", "misc"):
                pass
            with tracer.span("c", "misc"):
                pass
        (root,) = tracer.roots()
        assert [s.name for s in root.walk()] == ["a", "b", "c"]

    def test_clear_empties_the_forest(self):
        tracer = Tracer()
        with tracer.span("a", "misc"):
            pass
        tracer.clear()
        assert tracer.n_spans == 0


class TestThreads:
    def test_worker_thread_spans_become_their_own_roots(self):
        tracer = Tracer()

        def work():
            with tracer.span("on-worker", "mapreduce"):
                pass

        with tracer.span("on-main", "misc"):
            thread = threading.Thread(target=work, name="worker-0")
            thread.start()
            thread.join()
        names = {r.name for r in tracer.roots()}
        assert names == {"on-main", "on-worker"}
        worker_root = next(
            r for r in tracer.roots() if r.name == "on-worker"
        )
        assert worker_root.thread == "worker-0"
        assert worker_root.children == []

    def test_concurrent_recording_is_thread_safe(self):
        tracer = Tracer()

        def work(i):
            for _ in range(50):
                with tracer.span(f"t{i}", "misc"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.n_spans == 200


class TestInstallation:
    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_previous(self):
        before = get_tracer()
        with use_tracer(Tracer()) as tracer:
            assert get_tracer() is tracer
            with span("live", "misc"):
                pass
        assert get_tracer() is before
        assert tracer.n_spans == 1


class TestBridge:
    def test_record_span_is_top_level(self):
        tracer = Tracer()
        with tracer.span("open", "misc"):
            tracer.record_span(
                "bridged", "runtime-task", wall_seconds=0.5, executor="thread"
            )
        names = {r.name for r in tracer.roots()}
        assert names == {"open", "bridged"}
        bridged = next(r for r in tracer.roots() if r.name == "bridged")
        assert bridged.wall_seconds == 0.5
        assert bridged.attrs["executor"] == "thread"

    def test_record_span_backdates_when_started_missing(self):
        tracer = Tracer()
        sp = tracer.record_span("late", "runtime-task", wall_seconds=0.25)
        now = time.perf_counter() - tracer.epoch
        assert 0.0 <= sp.started <= now

    def test_ingest_report_duck_types_tasks(self):
        class FakeTask:
            name = "build"
            wall_seconds = 0.125
            started_at = time.perf_counter()
            executor = "thread"
            attempts = 1
            cache_hit = False
            cached = True
            error = None

        class FakeReport:
            tasks = [FakeTask()]

        tracer = Tracer()
        tracer.ingest_report(FakeReport())
        (root,) = tracer.roots()
        assert root.name == "task:build"
        assert root.category == "runtime-task"
        assert root.wall_seconds == 0.125
        assert root.attrs["attempts"] == 1
