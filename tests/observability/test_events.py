"""Structured event log: buffering, file tee, correlation filters,
module-level emit gating, and the ``events`` CLI subcommand.
"""

import json
import os

from repro.observability import (
    EventLog,
    NullEventLog,
    emit,
    get_event_log,
    use_event_log,
)
from repro.observability.cli import main


class TestEventLog:
    def test_emit_records_envelope_fields(self):
        log = EventLog()
        record = log.emit(
            "worker.spawn", correlation_id="worker-0", attempt=1
        )
        assert record["event"] == "worker.spawn"
        assert record["correlation_id"] == "worker-0"
        assert record["attempt"] == 1
        assert record["pid"] == os.getpid()
        assert record["ts"] > 0
        assert len(log) == 1

    def test_filters_by_prefix_and_correlation(self):
        log = EventLog()
        log.emit("worker.spawn", correlation_id="worker-0")
        log.emit("worker.death", correlation_id="worker-0")
        log.emit("serving.shed", correlation_id="demo/point")
        assert len(log.records(event="worker.")) == 2
        assert len(log.records(correlation_id="worker-0")) == 2
        assert len(log.records(event="worker.", correlation_id="x")) == 0

    def test_ingest_preserves_origin_ts_and_pid(self):
        log = EventLog()
        log.ingest([{"ts": 1.5, "pid": 999, "event": "task.start",
                     "correlation_id": "map-0"}])
        (record,) = log.export_records()
        assert record["ts"] == 1.5
        assert record["pid"] == 999

    def test_tees_to_jsonl_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("a", correlation_id="1", unpicklable=object())
        log.ingest([{"ts": 0.0, "pid": 1, "event": "b",
                     "correlation_id": "2"}])
        log.close()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(ln)["event"] for ln in lines] == ["a", "b"]

    def test_clear_empties_buffer_only(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("a")
        log.clear()
        log.close()
        assert len(log) == 0
        assert path.read_text().count("\n") == 1


class TestModuleEmit:
    def test_disabled_by_default(self):
        assert isinstance(get_event_log(), NullEventLog)
        emit("ignored.event")  # must be a silent no-op
        assert len(get_event_log()) == 0

    def test_emit_lands_on_installed_log(self):
        with use_event_log() as log:
            emit("test.event", correlation_id="c1", n=3)
        assert log.records(event="test.")[0]["n"] == 3
        assert isinstance(get_event_log(), NullEventLog)


class TestEventsCli:
    def write_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with use_event_log(EventLog(str(path))) as log:
            log.emit("worker.spawn", correlation_id="worker-0")
            log.emit("worker.telemetry_dropped", correlation_id="map-1")
            log.close()
        return str(path)

    def test_filters_and_counts(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        assert main(["events", path, "--event", "worker.telemetry"]) == 0
        out, err = capsys.readouterr()
        assert json.loads(out)["correlation_id"] == "map-1"
        assert "1 matching event(s)" in err

    def test_correlation_filter(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        assert main(["events", path, "--correlation", "worker-0"]) == 0
        out, _ = capsys.readouterr()
        assert json.loads(out)["event"] == "worker.spawn"
