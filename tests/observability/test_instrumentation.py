"""End-to-end instrumentation: category coverage, wall-time accounting,
the CLI ``--trace`` flag, the runtime bridge, and the overhead guard."""

import json
import time

import pytest

import numpy as np

from repro.core import EnsembleStudy
from repro.observability import (
    NullTracer,
    Tracer,
    flat_profile,
    get_tracer,
    span,
    use_metrics,
    use_tracer,
)
from repro.runtime import Runtime, TaskGraph
from repro.sampling import (
    GridSampler,
    LatinHypercubeSampler,
    RandomSampler,
    SliceSampler,
)
from repro.simulation import DoublePendulum
from repro.storage import BlockTensorStore
from repro.tensor import SparseTensor

#: the flat profile must split pipeline time across these.
PIPELINE_CATEGORIES = {
    "sample",
    "simulate",
    "stitch",
    "decompose",
    "stitch-factor",
}


@pytest.fixture(scope="module")
def pipeline_tracer():
    """One fully traced pipeline run: study construction + M2TD."""
    with use_tracer(Tracer()) as tracer:
        study = EnsembleStudy.create(DoublePendulum(), resolution=5)
        study.run_m2td([2] * study.space.n_modes, variant="select", seed=7)
    return tracer


class TestPipelineCoverage:
    def test_all_pipeline_categories_present(self, pipeline_tracer):
        categories = {s.category for s in pipeline_tracer.iter_spans()}
        assert PIPELINE_CATEGORIES <= categories

    def test_flat_profile_splits_time_across_categories(self, pipeline_tracer):
        text = flat_profile(pipeline_tracer)
        for category in PIPELINE_CATEGORIES:
            assert category in text

    def test_spans_carry_shape_attributes(self, pipeline_tracer):
        decompose = [
            s
            for s in pipeline_tracer.iter_spans()
            if s.category == "decompose" and "shape" in s.attrs
        ]
        assert decompose

    def test_stitch_spans_report_join_nnz(self, pipeline_tracer):
        joins = [
            s
            for s in pipeline_tracer.iter_spans()
            if s.name == "join-tensor"
        ]
        assert joins and all(s.attrs["join_nnz"] > 0 for s in joins)


class TestWallTimeAccounting:
    def test_top_level_spans_cover_ninety_percent(self, pendulum_study):
        ranks = [2] * pendulum_study.space.n_modes
        started = time.perf_counter()
        with use_tracer(Tracer()) as tracer:
            with span("pipeline", "experiment"):
                pendulum_study.run_m2td(ranks, variant="select", seed=7)
        elapsed = time.perf_counter() - started
        assert tracer.total_wall_seconds() >= 0.9 * elapsed


class TestCLITraceFlag:
    def test_study_cli_emits_valid_chrome_trace(self, tmp_path):
        from repro.experiments import study_cli

        config = {
            "system": "double_pendulum",
            "resolution": 5,
            "rank": 2,
            "seed": 7,
            "schemes": [
                {"kind": "m2td", "variant": "select"},
                {"kind": "conventional", "sampler": "Random"},
            ],
        }
        config_path = tmp_path / "study.json"
        config_path.write_text(json.dumps(config))
        trace_path = tmp_path / "trace.json"
        profile_path = tmp_path / "profile.txt"
        metrics_path = tmp_path / "metrics.json"

        started = time.perf_counter()
        code = study_cli.main(
            [
                str(config_path),
                "--trace", str(trace_path),
                "--profile", str(profile_path),
                "--metrics", str(metrics_path),
            ]
        )
        elapsed = time.perf_counter() - started
        assert code == 0

        doc = json.loads(trace_path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        for event in events:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        # The experiment-level spans must account for >= 90% of the
        # measured wall time of the whole CLI invocation.
        experiment_seconds = (
            sum(e["dur"] for e in events if e["cat"] == "experiment") / 1e6
        )
        assert experiment_seconds >= 0.9 * elapsed
        # Runtime task metrics were bridged into the same trace.
        assert any(e["cat"] == "runtime-task" for e in events)

        profile = profile_path.read_text()
        for category in PIPELINE_CATEGORIES:
            assert category in profile
        metrics = json.loads(metrics_path.read_text())
        assert metrics["svd.calls"]["value"] > 0

    def test_experiments_cli_trace_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        trace_path = tmp_path / "trace.json"
        assert main(["table2", "--quick", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        doc = json.loads(trace_path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "experiment:table2" for e in events)
        assert PIPELINE_CATEGORIES <= {e["cat"] for e in events}


class TestStorageInstrumentation:
    """PR-2 coverage gap: the block store reports spans and byte counts."""

    @pytest.fixture()
    def stored(self, tmp_path, rng):
        store = BlockTensorStore(tmp_path / "store")
        shape = (6, 5, 4)
        coords = np.stack(
            np.unravel_index(np.arange(0, 120, 3), shape), axis=1
        )
        tensor = SparseTensor(shape, coords, rng.standard_normal(len(coords)))
        return store, tensor

    def test_put_get_slice_emit_storage_spans(self, stored):
        store, tensor = stored
        with use_tracer(Tracer()) as tracer:
            store.put("ens", tensor)
            store.get("ens")
            store.slice_query("ens", mode=0, index=2)
        names = {
            s.name for s in tracer.iter_spans() if s.category == "storage"
        }
        assert {"store-put", "store-get", "store-slice-query"} <= names
        put = next(
            s for s in tracer.iter_spans() if s.name == "store-put"
        )
        assert put.attrs["bytes_written"] > 0
        assert put.attrs["n_blocks"] > 0
        sliced = next(
            s for s in tracer.iter_spans() if s.name == "store-slice-query"
        )
        assert sliced.attrs["blocks_read"] > 0

    def test_serialisation_byte_counters(self, stored):
        store, tensor = stored
        with use_metrics() as registry:
            store.put("ens", tensor)
            store.get("ens")
            store.slice_query("ens", mode=0, index=2)
            assert registry.counter("storage.puts").value == 1
            assert registry.counter("storage.gets").value == 1
            assert registry.counter("storage.slice_queries").value == 1
            written = registry.counter("storage.bytes_serialized").value
            read = registry.counter("storage.bytes_deserialized").value
            assert written > 0
            # get() reads every block once; the slice query re-reads a
            # subset — so at least the full serialized size came back.
            assert read >= written
            assert registry.counter("storage.block_reads").value > 0
            assert registry.histogram("storage.block_bytes").count == (
                registry.counter("storage.blocks_written").value
            )


class TestSamplerInstrumentation:
    """PR-2 coverage gap: per-sampler cell counts and sample spans."""

    SAMPLERS = [
        RandomSampler(seed=7),
        GridSampler(),
        SliceSampler(seed=7),
        LatinHypercubeSampler(seed=7),
    ]

    @pytest.mark.parametrize(
        "sampler", SAMPLERS, ids=[s.name for s in SAMPLERS]
    )
    def test_per_sampler_cell_counters(self, sampler):
        with use_metrics() as registry:
            sample = sampler.sample((6, 6, 6), 30)
            assert (
                registry.counter(f"sample.{sampler.name}.cells").value
                == sample.n_cells
            )
            assert registry.counter("sample.cells").value == sample.n_cells
            assert registry.histogram("sample.density").count == 1

    def test_sampler_span_carries_cells(self):
        with use_tracer(Tracer()) as tracer:
            RandomSampler(seed=7).sample((5, 5, 5), 20)
        spans = [s for s in tracer.iter_spans() if s.name == "sample-random"]
        assert spans and spans[0].category == "sample"
        assert spans[0].attrs["cells"] == 20
        assert spans[0].attrs["sampler"] == "Random"


class TestRuntimeBridge:
    def test_task_metrics_become_runtime_task_spans(self):
        graph = TaskGraph()
        graph.add("answer", lambda: 42, affinity="thread")
        runtime = Runtime(workers=2)
        try:
            with use_tracer(Tracer()) as tracer:
                outcome = runtime.run(graph)
        finally:
            runtime.shutdown()
        assert outcome.results["answer"] == 42
        bridged = [
            s for s in tracer.iter_spans() if s.category == "runtime-task"
        ]
        assert [s.name for s in bridged] == ["task:answer"]
        assert bridged[0].attrs["attempts"] == 1
        assert bridged[0].attrs["executor"]

    def test_disabled_tracer_skips_bridge(self):
        graph = TaskGraph()
        graph.add("answer", lambda: 1)
        runtime = Runtime(workers=1)
        try:
            outcome = runtime.run(graph)  # default NullTracer: no crash
        finally:
            runtime.shutdown()
        assert outcome.results["answer"] == 1


class TestOverheadGuard:
    def test_default_is_the_noop_tracer(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer().enabled is False

    def test_disabled_instrumentation_under_five_percent(self, pendulum_study):
        """Bound the no-op cost: (spans a traced run would record) x
        (per-call no-op cost) must stay below 5% of the untraced wall
        time.  Counting spans instead of diffing two wall-clock runs
        keeps the guard immune to scheduler noise."""
        ranks = [2] * pendulum_study.space.n_modes
        pendulum_study.run_m2td(ranks, variant="select", seed=7)  # warm-up
        started = time.perf_counter()
        pendulum_study.run_m2td(ranks, variant="select", seed=7)
        untraced_seconds = time.perf_counter() - started

        with use_tracer(Tracer()) as tracer:
            pendulum_study.run_m2td(ranks, variant="select", seed=7)
        n_spans = tracer.n_spans
        assert n_spans > 0

        calls = 50_000
        started = time.perf_counter()
        for _ in range(calls):
            with span("bench", "misc", shape=(4, 4), mode=0):
                pass
        per_call = (time.perf_counter() - started) / calls

        overhead = n_spans * per_call
        assert overhead < 0.05 * untraced_seconds, (
            f"{n_spans} spans x {per_call * 1e9:.0f}ns = "
            f"{overhead * 1e3:.3f}ms >= 5% of {untraced_seconds * 1e3:.1f}ms"
        )
