"""SLO layer: objective validation, evaluation semantics, the
``python -m repro.observability slo --check`` exit-code contract, and
the committed default objective file.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import SLOConfigError
from repro.observability import (
    MetricsRegistry,
    SLObjective,
    evaluate_slos,
    load_objectives,
)
from repro.observability.cli import main
from repro.observability.slo import SLOResult

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OBJECTIVES = REPO_ROOT / "benchmarks" / "slo" / "default.json"


def snapshot(**values):
    """Counter-shaped snapshot from keyword values."""
    return {
        name: {"kind": "counter", "value": float(value)}
        for name, value in values.items()
    }


class TestObjectiveValidation:
    def test_unknown_stat_rejected(self):
        with pytest.raises(SLOConfigError, match="unknown stat"):
            SLObjective("o", "m", "p42", "<=", 1.0)

    def test_unknown_op_rejected(self):
        with pytest.raises(SLOConfigError, match="unknown op"):
            SLObjective("o", "m", "value", "~=", 1.0)

    def test_rate_needs_denominator(self):
        with pytest.raises(SLOConfigError, match="denominator"):
            SLObjective("o", "m", "rate", "<=", 0.1)

    def test_from_dict_missing_field(self):
        with pytest.raises(SLOConfigError, match="missing field"):
            SLObjective.from_dict({"name": "o", "metric": "m"})

    def test_round_trips_through_dict(self):
        objective = SLObjective(
            "o", "m", "rate", "<=", 0.1,
            denominator=("a", "b"), required=True,
        )
        clone = SLObjective.from_dict(objective.as_dict())
        assert clone.as_dict() == objective.as_dict()


class TestEvaluation:
    def check_one(self, objective, snap):
        (result,) = evaluate_slos([objective], snap).results
        return result

    def test_ok_and_breach(self):
        objective = SLObjective("o", "errors", "value", "<=", 2.0)
        assert self.check_one(objective, snapshot(errors=1)).status == "ok"
        assert (
            self.check_one(objective, snapshot(errors=3)).status == "breach"
        )

    def test_missing_metric_skips(self):
        result = self.check_one(
            SLObjective("o", "absent", "value", "<=", 1.0), {}
        )
        assert result.status == SLOResult.SKIPPED
        assert result.ok

    def test_missing_required_metric_breaches(self):
        result = self.check_one(
            SLObjective("o", "absent", "value", ">=", 1.0, required=True),
            {},
        )
        assert result.status == SLOResult.BREACH
        assert "absent" in result.detail

    def test_rate_divides_by_denominator_sum(self):
        objective = SLObjective(
            "o", "shed", "rate", "<=", 0.1,
            denominator=("served", "shed"),
        )
        result = self.check_one(objective, snapshot(shed=5, served=95))
        assert result.value == pytest.approx(0.05)
        assert result.status == "ok"

    def test_rate_empty_denominator_reads_zero(self):
        objective = SLObjective(
            "o", "shed", "rate", "<=", 0.1, denominator=("served",)
        )
        result = self.check_one(objective, {})
        assert result.value == 0.0
        assert result.status == "ok"

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (0.1, 0.2, 0.3, 10.0):
            histogram.observe(value)
        snap = registry.as_dict()
        p99 = SLObjective("p99", "latency", "p99", "<=", 1.0)
        count = SLObjective("count", "latency", "count", ">=", 4)
        report = evaluate_slos([p99, count], snap)
        assert [r.status for r in report.results] == ["breach", "ok"]

    def test_histogram_rate_uses_count(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(1.0)
        registry.histogram("lat").observe(2.0)
        registry.counter("errors").inc()
        objective = SLObjective(
            "o", "errors", "rate", "<=", 0.75, denominator=("lat",)
        )
        (result,) = evaluate_slos(
            [objective], registry.as_dict()
        ).results
        assert result.value == pytest.approx(0.5)

    def test_report_render_has_footer(self):
        report = evaluate_slos(
            [SLObjective("o", "m", "value", "<=", 1.0)], snapshot(m=0)
        )
        assert "0 breached / 1 checked / 0 skipped" in report.render()


class TestLoadObjectives:
    def test_bare_list_and_wrapped_document(self, tmp_path):
        record = {"name": "o", "metric": "m", "op": "<=", "threshold": 1}
        for document in ([record], {"objectives": [record]}):
            path = tmp_path / "slo.json"
            path.write_text(json.dumps(document))
            (loaded,) = load_objectives(str(path))
            assert loaded.name == "o"
            assert loaded.stat == "value"

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"not": "objectives"}')
        with pytest.raises(SLOConfigError):
            load_objectives(str(path))

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(SLOConfigError, match="not JSON"):
            load_objectives(str(path))


def healthy_dump():
    """Metrics a clean traced 4-worker D-M2TD run produces (the shape
    the CI observability job feeds to ``slo --check``)."""
    return snapshot(
        **{
            "svd.calls": 6,
            "worker.tasks_dispatched": 20,
            "worker.bytes_sent": 74298,
            "worker.bytes_received": 65576,
        }
    )


class TestDefaultObjectiveFile:
    def test_committed_defaults_load(self):
        objectives = load_objectives(str(DEFAULT_OBJECTIVES))
        assert {"decomposition-ran", "telemetry-drop-rate"} <= {
            o.name for o in objectives
        }

    def test_clean_run_passes(self):
        report = evaluate_slos(
            load_objectives(str(DEFAULT_OBJECTIVES)), healthy_dump()
        )
        assert report.ok, report.render()

    def test_breached_run_fails(self):
        dump = healthy_dump()
        dump.update(
            snapshot(**{"worker.telemetry_dropped": 19, "worker.degraded": 1})
        )
        report = evaluate_slos(
            load_objectives(str(DEFAULT_OBJECTIVES)), dump
        )
        assert not report.ok
        assert {r.objective.name for r in report.breaches} == {
            "telemetry-drop-rate",
            "no-inline-degradation",
        }


class TestCliExitCodes:
    def write_dump(self, tmp_path, dump):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(dump))
        return str(path)

    def test_check_exits_zero_on_clean_dump(self, tmp_path, capsys):
        code = main([
            "slo", "--objectives", str(DEFAULT_OBJECTIVES),
            "--metrics", self.write_dump(tmp_path, healthy_dump()),
            "--check",
        ])
        assert code == 0
        assert "breached" in capsys.readouterr().out

    def test_check_exits_one_on_breached_dump(self, tmp_path, capsys):
        dump = healthy_dump()
        dump.update(snapshot(**{"worker.degraded": 1}))
        code = main([
            "slo", "--objectives", str(DEFAULT_OBJECTIVES),
            "--metrics", self.write_dump(tmp_path, dump),
            "--check", "--json",
        ])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False

    def test_without_check_breaches_only_report(self, tmp_path):
        dump = {"svd.calls": {"kind": "counter", "value": 0.0}}
        code = main([
            "slo", "--objectives", str(DEFAULT_OBJECTIVES),
            "--metrics", self.write_dump(tmp_path, dump),
        ])
        assert code == 0

    def test_module_entry_point(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.observability", "slo",
                "--objectives", str(DEFAULT_OBJECTIVES),
                "--metrics",
                self.write_dump(tmp_path, healthy_dump()),
                "--check",
            ],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
