"""Cross-process trace stitching: context propagation, child-side
capture, snapshot wire shape, parent-side merge, canonical signatures.
"""

import json
import os

import pytest

from repro.observability import (
    EventLog,
    MetricsRegistry,
    NULL_TRACER,
    Span,
    TelemetryEnvelope,
    TelemetryTask,
    TraceContext,
    Tracer,
    capture,
    current_trace_context,
    decode_snapshot,
    encode_snapshot,
    get_metrics,
    get_tracer,
    merge_snapshot,
    merged_trace_signature,
    span_from_dict,
    span_to_dict,
    use_tracer,
)


class TestTraceContext:
    def test_none_while_tracing_off(self):
        assert current_trace_context() is None

    def test_carries_active_trace_id(self):
        with use_tracer(Tracer()) as tracer:
            context = current_trace_context("dispatch:map-0")
        assert context.trace_id == tracer.trace_id
        assert context.parent_span == "dispatch:map-0"

    def test_tracer_ids_distinct(self):
        assert Tracer().trace_id != Tracer().trace_id
        assert NULL_TRACER.trace_id == ""


class TestSpanRoundTrip:
    def build(self):
        tracer = Tracer()
        with tracer.span("outer", "mapreduce", job="phase1") as outer:
            with tracer.span("inner", "tensor-op", mode=2):
                pass
        return tracer, outer

    def test_round_trip_preserves_tree(self):
        tracer, outer = self.build()
        data = span_to_dict(outer)
        rebuilt = span_from_dict(Tracer(), data)
        assert rebuilt.name == "outer"
        assert rebuilt.category == "mapreduce"
        assert rebuilt.attrs["job"] == "phase1"
        assert [c.name for c in rebuilt.children] == ["inner"]
        assert rebuilt.children[0].attrs["mode"] == 2

    def test_unjsonable_attrs_fall_back_to_repr(self):
        tracer = Tracer()
        with tracer.span("s", "misc", obj=object()) as span:
            pass
        data = span_to_dict(span)
        json.dumps(data)  # must not raise
        assert "object" in data["attrs"]["obj"]

    def test_shift_moves_onto_parent_timeline(self):
        _, outer = self.build()
        data = span_to_dict(outer)
        rebuilt = span_from_dict(Tracer(), data, shift=10.0)
        assert rebuilt.started == pytest.approx(outer.started + 10.0)

    def test_window_clamps_skewed_spans_recursively(self):
        data = {
            "name": "child", "category": "misc", "started": 50.0,
            "wall": 100.0,
            "children": [
                {"name": "grand", "category": "misc",
                 "started": 120.0, "wall": 5.0},
            ],
        }
        rebuilt = span_from_dict(Tracer(), data, window=(1.0, 2.0))
        assert rebuilt.started == 2.0
        assert rebuilt.wall_seconds == 0.0
        grand = rebuilt.children[0]
        assert grand.started <= rebuilt.started + rebuilt.wall_seconds
        assert grand.wall_seconds == 0.0

    def test_process_attribution_propagates_to_children(self):
        _, outer = self.build()
        rebuilt = span_from_dict(
            Tracer(), span_to_dict(outer),
            process_id=99, process_name="worker.2",
        )
        for span in (rebuilt, *rebuilt.children):
            assert span.process_id == 99
            assert span.process_name == "worker.2"


class TestCapture:
    def test_installs_and_restores_globals(self):
        before_tracer, before_metrics = get_tracer(), get_metrics()
        context = TraceContext("abc123", "dispatch:t")
        with capture(context, worker="3") as telemetry:
            assert get_tracer() is telemetry.tracer
            assert get_metrics() is telemetry.registry
            assert telemetry.tracer.trace_id == "abc123"
            with telemetry.tracer.span("work", "misc"):
                get_metrics().counter("c").inc()
        assert get_tracer() is before_tracer
        assert get_metrics() is before_metrics

    def test_snapshot_shape(self):
        with capture(TraceContext("t1"), worker="0") as telemetry:
            with telemetry.tracer.span("work", "misc"):
                pass
        snapshot = telemetry.snapshot()
        assert snapshot["version"] == 1
        assert snapshot["trace_id"] == "t1"
        assert snapshot["pid"] == os.getpid()
        assert snapshot["worker"] == "0"
        assert snapshot["epoch_unix"] > 0
        assert [s["name"] for s in snapshot["spans"]] == ["work"]

    def test_encode_decode_round_trip(self):
        with capture(TraceContext("t1")) as telemetry:
            pass
        payload = telemetry.encode()
        assert decode_snapshot(payload)["trace_id"] == "t1"

    @pytest.mark.parametrize(
        "payload",
        [b"\xff\x00garbage", b"[1, 2]", b'{"no": "version"}',
         b'{"version": 99}'],
        ids=["binary", "not-a-dict", "versionless", "future-version"],
    )
    def test_decode_rejects_non_snapshots(self, payload):
        with pytest.raises(ValueError):
            decode_snapshot(payload)


def child_snapshot(worker="1", epoch_unix=1000.0, counters=(), spans=()):
    return {
        "version": 1, "trace_id": "t", "pid": 777, "worker": worker,
        "epoch_unix": epoch_unix,
        "spans": list(spans),
        "metrics": {
            name: {"kind": "counter", "value": value}
            for name, value in counters
        },
        "events": [],
    }


class TestMergeSnapshot:
    def dispatch_span(self, tracer, started=5.0, wall=2.0):
        span = Span(tracer, "dispatch:map-0", "worker", {})
        span.started, span.wall_seconds = started, wall
        return span

    def test_spans_attach_under_dispatch_with_attribution(self):
        tracer = Tracer()
        dispatch = self.dispatch_span(tracer)
        snapshot = child_snapshot(spans=[
            {"name": "map-0", "category": "mapreduce",
             "started": 0.5, "wall": 1.0, "children": []},
        ])
        attached = merge_snapshot(
            snapshot, parent_span=dispatch, tracer=tracer,
            registry=MetricsRegistry(), dispatched_unix=1000.0,
            worker_id="1",
        )
        assert attached == 1
        (child,) = dispatch.children
        assert child.process_id == 777
        assert child.process_name == "worker.1"
        # dispatched at child epoch => child offsets land at
        # dispatch.started + offset, inside the window.
        assert child.started == pytest.approx(5.5)

    def test_skewed_clock_stays_inside_dispatch_window(self):
        tracer = Tracer()
        dispatch = self.dispatch_span(tracer, started=5.0, wall=2.0)
        snapshot = child_snapshot(
            epoch_unix=5000.0,  # wildly skewed vs dispatched_unix
            spans=[{"name": "m", "category": "mapreduce",
                    "started": 0.0, "wall": 1.0, "children": []}],
        )
        merge_snapshot(
            snapshot, parent_span=dispatch, tracer=tracer,
            registry=MetricsRegistry(), dispatched_unix=1000.0,
        )
        (child,) = dispatch.children
        assert 5.0 <= child.started <= 7.0
        assert child.started + child.wall_seconds <= 7.0

    def test_counters_fold_globally_and_per_worker(self):
        registry = MetricsRegistry()
        registry.counter("svd.calls").inc(2)
        merge_snapshot(
            child_snapshot(counters=[("svd.calls", 3.0)]),
            registry=registry, worker_id="1",
        )
        merge_snapshot(
            child_snapshot(counters=[("svd.calls", 4.0)]),
            registry=registry, worker_id="2",
        )
        state = registry.as_dict()
        assert state["svd.calls"]["value"] == 9.0
        assert state["worker.1.svd.calls"]["value"] == 3.0
        assert state["worker.2.svd.calls"]["value"] == 4.0

    def test_events_replay_with_worker_tag(self):
        events = EventLog()
        snapshot = child_snapshot()
        snapshot["events"] = [
            {"ts": 1.0, "pid": 777, "event": "task.start",
             "correlation_id": "map-0"},
        ]
        merge_snapshot(snapshot, events=events, worker_id="1")
        (record,) = events.export_records()
        assert record["event"] == "task.start"
        assert record["worker"] == "1"
        assert record["pid"] == 777

    def test_no_parent_span_merges_metrics_only(self):
        registry = MetricsRegistry()
        attached = merge_snapshot(
            child_snapshot(counters=[("c", 1.0)]), registry=registry,
        )
        assert attached == 0
        assert registry.as_dict()["c"]["value"] == 1.0


class TestMergedTraceSignature:
    def build(self, worker, pid):
        tracer = Tracer()
        with tracer.span("supervisor-run", "worker"):
            pass
        root = tracer.roots()[0]
        for task in ("map-1", "map-0"):
            dispatch = Span(
                tracer, f"dispatch:{task}", "worker",
                {"worker": worker, "requeues": 0},
            )
            child = Span(tracer, task, "mapreduce", {"pid": pid})
            dispatch.children.append(child)
            root.children.append(dispatch)
        return tracer

    def test_identical_despite_volatile_attrs_and_order(self):
        assert merged_trace_signature(
            self.build("worker-0", 100)
        ) == merged_trace_signature(self.build("worker-3", 999))

    def test_differs_on_real_structure(self):
        tracer = self.build("worker-0", 100)
        extra = Span(tracer, "dispatch:reduce-0", "worker", {})
        tracer.roots()[0].children.append(extra)
        assert merged_trace_signature(tracer) != merged_trace_signature(
            self.build("worker-0", 100)
        )


class TestTelemetryTask:
    def test_wraps_result_in_envelope_with_snapshot(self):
        def body(a, b):
            get_metrics().counter("body.calls").inc()
            return a + b

        task = TelemetryTask(body, TraceContext("tid"), label="t1")
        envelope = task(2, 3)
        assert isinstance(envelope, TelemetryEnvelope)
        assert envelope.value == 5
        assert envelope.snapshot["trace_id"] == "tid"
        assert envelope.snapshot["metrics"]["body.calls"]["value"] == 1.0

    def test_pickles(self):
        import pickle

        task = TelemetryTask(len, TraceContext("tid"), label="t")
        clone = pickle.loads(pickle.dumps(task))
        assert clone((1, 2, 3)).value == 3
