"""MetricsRegistry: counters, gauges, histograms, and the JSON dump."""

import json
import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    diff_snapshots,
    get_metrics,
    set_metrics,
    use_metrics,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("svd.calls")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_thread_safe_under_contention(self):
        counter = MetricsRegistry().counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000.0


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("workers")
        assert gauge.value is None
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary_stats(self):
        hist = MetricsRegistry().histogram("rank")
        for value in (2, 4, 6):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.min == 2.0
        assert hist.max == 6.0
        assert hist.mean == 4.0

    def test_empty_mean_is_none(self):
        assert MetricsRegistry().histogram("h").mean is None

    def test_percentiles(self):
        hist = MetricsRegistry().histogram("lat")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(90) == pytest.approx(90.1)
        assert hist.percentile(99) == pytest.approx(99.01)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_empty_percentile_is_none(self):
        assert MetricsRegistry().histogram("h").percentile(50) is None

    def test_as_dict_exports_percentiles(self):
        hist = MetricsRegistry().histogram("h")
        for value in (1, 2, 3):
            hist.observe(value)
        dumped = hist.as_dict()
        assert dumped["p50"] == 2.0
        assert dumped["p90"] == pytest.approx(2.8)
        assert dumped["p99"] == pytest.approx(2.98)

    def test_decimation_bounds_memory_and_keeps_shape(self):
        hist = MetricsRegistry().histogram("big")
        hist.max_samples = 64  # shrink the ceiling for the test
        for value in range(10_000):
            hist.observe(value)
        assert len(hist._samples) < 128
        assert hist.count == 10_000
        # The decimated percentile still tracks the true distribution.
        assert abs(hist.percentile(50) - 5_000) < 1_000


class TestSnapshotDiff:
    def test_counter_delta(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        before = registry.snapshot()
        registry.counter("calls").inc(3)
        delta = registry.diff(before)
        assert delta["calls"] == {"kind": "counter", "value": 3.0}

    def test_unchanged_metrics_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("quiet").inc()
        registry.gauge("level").set(4)
        registry.histogram("h").observe(1)
        before = registry.snapshot()
        assert registry.diff(before) == {}

    def test_metric_born_inside_window_reports_full_value(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.counter("new").inc(7)
        assert registry.diff(before)["new"]["value"] == 7.0

    def test_gauge_reports_new_value(self):
        registry = MetricsRegistry()
        registry.gauge("workers").set(1)
        before = registry.snapshot()
        registry.gauge("workers").set(4)
        assert registry.diff(before)["workers"] == {
            "kind": "gauge", "value": 4.0,
        }

    def test_histogram_window_delta(self):
        registry = MetricsRegistry()
        registry.histogram("rank").observe(100)
        before = registry.snapshot()
        registry.histogram("rank").observe(2)
        registry.histogram("rank").observe(4)
        delta = registry.diff(before)["rank"]
        assert delta["count"] == 2
        assert delta["sum"] == 6.0
        assert delta["mean"] == 3.0

    def test_diff_snapshots_is_pure(self):
        before = {"c": {"kind": "counter", "value": 1.0}}
        after = {"c": {"kind": "counter", "value": 4.0}}
        assert diff_snapshots(before, after) == {
            "c": {"kind": "counter", "value": 3.0}
        }
        # inputs untouched
        assert before["c"]["value"] == 1.0


class TestRegistry:
    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "b" in registry
        assert "missing" not in registry
        assert registry.names() == ["a", "b"]

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        registry.histogram("sizes").observe(10)
        snapshot = registry.as_dict()
        assert snapshot["calls"] == {"kind": "counter", "value": 2.0}
        assert snapshot["sizes"]["kind"] == "histogram"
        assert snapshot["sizes"]["count"] == 1

    def test_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.5)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == registry.as_dict()

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.clear()
        assert registry.names() == []


class TestGlobalRegistry:
    def test_use_metrics_installs_fresh_and_restores(self):
        before = get_metrics()
        with use_metrics() as registry:
            assert get_metrics() is registry
            assert registry is not before
            registry.counter("scoped").inc()
        assert get_metrics() is before
        assert "scoped" not in get_metrics()

    def test_set_metrics_none_installs_fresh(self):
        before = get_metrics()
        try:
            set_metrics(None)
            assert get_metrics() is not before
        finally:
            set_metrics(before)

    def test_library_populates_global_registry(self, rng):
        from repro.tensor import truncated_svd

        with use_metrics() as registry:
            truncated_svd(rng.standard_normal((6, 5)), 2)
            assert registry.counter("svd.calls").value == 1.0
            assert registry.histogram("svd.rank").max == 2.0
