"""MetricsRegistry: counters, gauges, histograms, and the JSON dump."""

import json
import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("svd.calls")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_thread_safe_under_contention(self):
        counter = MetricsRegistry().counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000.0


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("workers")
        assert gauge.value is None
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary_stats(self):
        hist = MetricsRegistry().histogram("rank")
        for value in (2, 4, 6):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.min == 2.0
        assert hist.max == 6.0
        assert hist.mean == 4.0

    def test_empty_mean_is_none(self):
        assert MetricsRegistry().histogram("h").mean is None


class TestRegistry:
    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "b" in registry
        assert "missing" not in registry
        assert registry.names() == ["a", "b"]

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        registry.histogram("sizes").observe(10)
        snapshot = registry.as_dict()
        assert snapshot["calls"] == {"kind": "counter", "value": 2.0}
        assert snapshot["sizes"]["kind"] == "histogram"
        assert snapshot["sizes"]["count"] == 1

    def test_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.5)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == registry.as_dict()

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.clear()
        assert registry.names() == []


class TestGlobalRegistry:
    def test_use_metrics_installs_fresh_and_restores(self):
        before = get_metrics()
        with use_metrics() as registry:
            assert get_metrics() is registry
            assert registry is not before
            registry.counter("scoped").inc()
        assert get_metrics() is before
        assert "scoped" not in get_metrics()

    def test_set_metrics_none_installs_fresh(self):
        before = get_metrics()
        try:
            set_metrics(None)
            assert get_metrics() is not before
        finally:
            set_metrics(before)

    def test_library_populates_global_registry(self, rng):
        from repro.tensor import truncated_svd

        with use_metrics() as registry:
            truncated_svd(rng.standard_normal((6, 5)), 2)
            assert registry.counter("svd.calls").value == 1.0
            assert registry.histogram("svd.rank").max == 2.0
