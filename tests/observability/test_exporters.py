"""Exporters: Chrome-trace JSON validity, flat profile, metrics dump."""

import json
import os
import threading

import numpy as np

from repro.observability import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    flat_profile,
    write_chrome_trace,
    write_flat_profile,
    write_metrics,
)
from repro.observability.exporters import _json_safe


def build_trace() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer", "decompose", shape=(4, 4, 4)):
        with tracer.span("inner", "tensor-op", mode=0):
            pass
        with tracer.span("inner", "tensor-op", mode=1):
            pass
    return tracer


class TestJsonSafe:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 1.5, "s"):
            assert _json_safe(value) == value

    def test_numpy_scalars_become_python(self):
        assert _json_safe(np.int64(3)) == 3
        assert _json_safe(np.float64(1.5)) == 1.5

    def test_containers_recurse(self):
        assert _json_safe((np.int64(1), [np.float32(2.0)])) == [1, [2.0]]
        assert _json_safe({"k": np.int64(7)}) == {"k": 7}

    def test_unknown_objects_fall_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert _json_safe(Opaque()) == "<opaque>"


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(build_trace())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = sorted({e["ph"] for e in events})
        assert phases == ["M", "X"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 3
        for event in spans:
            assert event["pid"] == os.getpid()
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert "cpu_seconds" in event["args"]

    def test_local_process_named_main(self):
        doc = chrome_trace(build_trace())
        process_meta = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert len(process_meta) == 1
        assert process_meta[0]["pid"] == os.getpid()
        assert process_meta[0]["args"]["name"] == "main"

    def test_remote_spans_get_their_own_pid_lane(self):
        tracer = build_trace()
        root = tracer.roots()[0]
        root.children[0].process_id = 4242
        root.children[0].process_name = "worker.3"
        doc = chrome_trace(tracer)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert sorted({e["pid"] for e in spans}) == sorted(
            {os.getpid(), 4242}
        )
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[4242] == "worker.3"
        assert names[os.getpid()] == "main"

    def test_attrs_are_json_serialisable(self):
        tracer = Tracer()
        with tracer.span(
            "svd", "decompose", shape=(np.int64(4), np.int64(5)), nnz=np.int64(9)
        ):
            pass
        text = json.dumps(chrome_trace(tracer))
        event = next(
            e for e in json.loads(text)["traceEvents"] if e["ph"] == "X"
        )
        assert event["args"]["shape"] == [4, 5]
        assert event["args"]["nnz"] == 9

    def test_threads_get_named_swimlanes(self):
        tracer = Tracer()

        def work():
            with tracer.span("w", "mapreduce"):
                pass

        thread = threading.Thread(target=work, name="map-worker-1")
        thread.start()
        thread.join()
        with tracer.span("m", "misc"):
            pass
        doc = chrome_trace(tracer)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        thread_names = {e["args"]["name"] for e in meta}
        assert "map-worker-1" in thread_names
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 2

    def test_error_spans_flagged(self):
        tracer = Tracer()
        try:
            with tracer.span("bad", "misc"):
                raise RuntimeError()
        except RuntimeError:
            pass
        (event,) = [
            e for e in chrome_trace(tracer)["traceEvents"] if e["ph"] == "X"
        ]
        assert event["args"]["error"] == "RuntimeError"

    def test_write_produces_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(build_trace(), str(path))
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)


class TestFlatProfile:
    def test_reports_categories_and_counts(self):
        text = flat_profile(build_trace())
        assert "3 spans" in text
        assert "decompose" in text
        assert "tensor-op" in text
        assert "inner" in text

    def test_nested_same_category_not_double_counted(self):
        tracer = Tracer()
        with tracer.span("hosvd", "decompose") as outer:
            with tracer.span("svd", "decompose"):
                pass
        text = flat_profile(tracer)
        line = next(
            ln for ln in text.splitlines() if ln.startswith("decompose")
        )
        cum = float(line.split()[3])
        assert cum <= outer.wall_seconds + 1e-9

    def test_top_limits_per_name_rows(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"op-{i}", "tensor-op"):
                pass
        limited = flat_profile(tracer, top=2)
        per_name = [
            ln for ln in limited.splitlines() if ln.startswith("  op-")
        ]
        assert len(per_name) == 2

    def test_write(self, tmp_path):
        path = tmp_path / "profile.txt"
        write_flat_profile(build_trace(), str(path))
        assert "flat profile" in path.read_text()


class TestWriteMetrics:
    def test_explicit_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        path = tmp_path / "metrics.json"
        write_metrics(str(path), registry)
        assert json.loads(path.read_text())["c"]["value"] == 5.0
