"""Degenerate input coverage: 0-nnz sub-tensors through stitch → M2TD.

An all-zero ensemble (every simulation produced nothing in the
observed cells) is a legal, if useless, input; the pipeline must
produce a well-shaped, finite decomposition — not crash in an SVD or
divide by an empty norm.
"""

import numpy as np
import pytest

from repro.core.m2td import m2td_decompose
from repro.core.stitch import join_tensor, zero_join_tensor
from repro.sampling import PFPartition
from repro.tensor import SparseTensor


@pytest.fixture()
def partition():
    return PFPartition((4, 4, 4, 4, 4), (4,), (0, 1), (2, 3))


@pytest.fixture()
def empty_subs(partition):
    return (
        SparseTensor(partition.sub_shape(1)),
        SparseTensor(partition.sub_shape(2)),
    )


class TestStitchEmpty:
    def test_join_of_empty_tensors_is_empty(self, partition, empty_subs):
        x1, x2 = empty_subs
        joined = join_tensor(x1, x2, partition)
        assert joined.nnz == 0
        assert joined.shape == partition.join_shape

    def test_zero_join_of_empty_tensors_is_empty(
        self, partition, empty_subs
    ):
        x1, x2 = empty_subs
        joined = zero_join_tensor(x1, x2, partition)
        assert joined.nnz == 0
        assert joined.shape == partition.join_shape

    def test_one_sided_empty_join(self, partition):
        rng = np.random.default_rng(3)
        x1 = SparseTensor.from_dense(
            rng.standard_normal(partition.sub_shape(1)), keep_zeros=True
        )
        x2 = SparseTensor(partition.sub_shape(2))
        joined = join_tensor(x1, x2, partition)
        assert joined.shape == partition.join_shape
        assert np.isfinite(joined.values).all()


class TestM2TDEmpty:
    @pytest.mark.parametrize("variant", ["select", "avg"])
    def test_decompose_empty_tensors_yields_finite_result(
        self, partition, empty_subs, variant
    ):
        x1, x2 = empty_subs
        result = m2td_decompose(x1, x2, partition, [2] * 5,
                                variant=variant)
        core = result.tucker.core
        assert core.shape == (2, 2, 2, 2, 2)
        assert np.isfinite(core).all()
        for factor, size in zip(result.tucker.factors, (4, 4, 4, 4, 4)):
            assert factor.shape[0] == size
            assert np.isfinite(factor).all()

    def test_decompose_one_sided_empty(self, partition):
        rng = np.random.default_rng(3)
        x1 = SparseTensor.from_dense(
            rng.standard_normal(partition.sub_shape(1)) + 2,
            keep_zeros=True,
        )
        x2 = SparseTensor(partition.sub_shape(2))
        result = m2td_decompose(x1, x2, partition, [2] * 5)
        assert np.isfinite(result.tucker.core).all()
