"""Time-incremental M2TD."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalM2TD, batch_reference
from repro.exceptions import ShapeError, StitchError

FREE_SHAPE = (6, 6)


def make_subs(rng, t):
    x1 = rng.standard_normal((t,) + FREE_SHAPE) + 2.0
    x2 = rng.standard_normal((t,) + FREE_SHAPE) + 2.0
    return x1, x2


def join_fit(tucker, x1, x2):
    t = x1.shape[0]
    joined = 0.5 * (
        x1.reshape(x1.shape + (1, 1)) + x2.reshape((t, 1, 1) + x2.shape[1:])
    )
    reconstruction = tucker.reconstruct()
    return 1 - np.linalg.norm(reconstruction - joined) / np.linalg.norm(joined)


class TestConstruction:
    def test_rejects_pivot_mismatch(self, rng):
        with pytest.raises(ShapeError):
            IncrementalM2TD(
                rng.standard_normal((3, 4, 4)),
                rng.standard_normal((4, 4, 4)),
                [2] * 5,
            )

    def test_rejects_bad_rank_count(self, rng):
        x1, x2 = make_subs(rng, 3)
        with pytest.raises(ShapeError):
            IncrementalM2TD(x1, x2, [2] * 4)

    def test_rejects_unknown_variant(self, rng):
        x1, x2 = make_subs(rng, 3)
        with pytest.raises(StitchError):
            IncrementalM2TD(x1, x2, [2] * 5, variant="concat")


class TestStreaming:
    def test_t_size_tracks_appends(self, rng):
        x1, x2 = make_subs(rng, 3)
        state = IncrementalM2TD(x1, x2, [2] * 5)
        assert state.t_size == 3
        more1, more2 = make_subs(rng, 2)
        state.append(more1, more2)
        assert state.t_size == 5

    def test_rejects_slab_shape_mismatch(self, rng):
        x1, x2 = make_subs(rng, 3)
        state = IncrementalM2TD(x1, x2, [2] * 5)
        with pytest.raises(ShapeError):
            state.append(
                rng.standard_normal((1, 5, 6)), rng.standard_normal((1, 6, 6))
            )

    def test_full_rank_streaming_exact_for_shared_pivot_structure(self, rng):
        """With identical sub-ensembles the combined pivot factor stays
        orthonormal, so full-rank streaming reconstructs the join
        tensor exactly.  (With *distinct* sub-ensembles even full-rank
        SELECT/AVG factors are non-orthogonal and ``U U^T != I`` —
        inherent to the paper's factor combination, not to the
        incremental update.)"""
        x1, _unused = make_subs(rng, 2)
        state = IncrementalM2TD(x1, x1.copy(), [8, 6, 6, 6, 6])
        for _step in range(6):
            s1, _unused2 = make_subs(rng, 1)
            state.append(s1, s1.copy())
        snapshot = state.decompose()
        full_x1 = state._sub1.data
        full_x2 = state._sub2.data
        assert join_fit(snapshot.tucker, full_x1, full_x2) > 1 - 1e-9

    def test_truncated_streaming_close_to_batch(self, rng):
        """Unstructured Gaussian data is the worst case for truncated
        streaming (every step's truncation discards genuine signal);
        the streamed fit must still land in the batch fit's
        neighbourhood."""
        x1, x2 = make_subs(rng, 3)
        ranks = [3, 3, 3, 3, 3]
        state = IncrementalM2TD(x1, x2, ranks)
        slabs = [make_subs(rng, 1) for _ in range(5)]
        for s1, s2 in slabs:
            state.append(s1, s2)
        snapshot = state.decompose()
        full_x1 = state._sub1.data
        full_x2 = state._sub2.data
        batch = batch_reference(full_x1, full_x2, ranks)
        streamed_fit = join_fit(snapshot.tucker, full_x1, full_x2)
        batch_fit = join_fit(batch, full_x1, full_x2)
        assert streamed_fit > batch_fit - 0.25

    def test_truncated_streaming_tight_on_low_rank_data(self, rng):
        """On genuinely low-rank streams truncation loses (almost)
        nothing and the streamed fit matches the batch fit closely."""
        from repro.tensor import random_low_rank

        full1 = np.moveaxis(
            random_low_rank(FREE_SHAPE + (8,), (2, 2, 2), seed=5), -1, 0
        )
        full2 = np.moveaxis(
            random_low_rank(FREE_SHAPE + (8,), (2, 2, 2), seed=6), -1, 0
        )
        ranks = [3, 3, 3, 3, 3]
        state = IncrementalM2TD(full1[:3], full2[:3], ranks)
        for t in range(3, 8):
            state.append(full1[t : t + 1], full2[t : t + 1])
        snapshot = state.decompose()
        batch = batch_reference(full1, full2, ranks)
        streamed_fit = join_fit(snapshot.tucker, full1, full2)
        batch_fit = join_fit(batch, full1, full2)
        assert streamed_fit > batch_fit - 0.02

    def test_snapshot_metadata(self, rng):
        x1, x2 = make_subs(rng, 4)
        state = IncrementalM2TD(x1, x2, [2] * 5)
        snapshot = state.decompose()
        assert snapshot.t_size == 4
        assert snapshot.factor_update_seconds >= 0
        assert snapshot.core_seconds >= 0

    @pytest.mark.parametrize("variant", ["avg", "select"])
    def test_variants_run(self, rng, variant):
        x1, x2 = make_subs(rng, 4)
        state = IncrementalM2TD(x1, x2, [2] * 5, variant=variant)
        s1, s2 = make_subs(rng, 1)
        state.append(s1, s2)
        snapshot = state.decompose()
        assert snapshot.tucker.shape == (5,) + FREE_SHAPE + FREE_SHAPE
