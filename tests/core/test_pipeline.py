"""EnsembleStudy: the end-to-end pipeline and the paper's headline
orderings on a tiny double-pendulum study."""

import numpy as np
import pytest

from repro.core import EnsembleStudy
from repro.exceptions import SamplingError
from repro.sampling import GridSampler, RandomSampler, budget_for_fractions

RANKS = [3] * 5


class TestStudyCreation:
    def test_shapes(self, pendulum_study):
        study = pendulum_study
        assert study.truth.shape == study.space.shape
        assert study.truth.min() >= 0  # distances

    def test_truth_nontrivial(self, pendulum_study):
        assert np.linalg.norm(pendulum_study.truth) > 0


class TestConventional:
    def test_runs(self, pendulum_study):
        result = pendulum_study.run_conventional(
            RandomSampler(seed=0), 100, RANKS
        )
        assert result.scheme == "Random"
        assert result.cells == 100
        assert -1.0 <= result.accuracy <= 1.0

    def test_budget_respected(self, pendulum_study):
        result = pendulum_study.run_conventional(GridSampler(), 200, RANKS)
        assert result.cells <= 200


class TestM2TD:
    def test_full_budget_run(self, pendulum_study):
        result = pendulum_study.run_m2td(RANKS, variant="select", seed=0)
        assert result.scheme == "M2TD-SELECT"
        # full-density sub-ensembles: 2 * R^3 cells
        assert result.cells == 2 * 6**3
        assert result.join_nnz == 6**5
        assert set(result.phase_seconds) == {
            "sub_decompose",
            "stitch",
            "core",
        }

    def test_beats_conventional_at_matched_budget(self, pendulum_study):
        study = pendulum_study
        m2td = study.run_m2td(RANKS, variant="select", seed=0)
        budget = study.matched_budget()
        assert budget == m2td.cells
        for sampler in (RandomSampler(seed=0), GridSampler()):
            baseline = study.run_conventional(sampler, budget, RANKS)
            assert m2td.accuracy > 5 * max(baseline.accuracy, 1e-12)

    def test_m2td_runs_fewer_simulations(self, pendulum_study):
        """The cost story: M2TD fills its tensor with far fewer
        simulation runs than Random needs for the same cell budget."""
        study = pendulum_study
        m2td = study.run_m2td(RANKS, seed=0)
        random = study.run_conventional(
            RandomSampler(seed=0), study.matched_budget(), RANKS
        )
        assert m2td.runs < random.runs

    def test_zero_join_at_low_budget(self, pendulum_study):
        study = pendulum_study
        join = study.run_m2td(
            RANKS, free_fraction=0.2, sub_sampling="random",
            join_kind="join", seed=0,
        )
        zero = study.run_m2td(
            RANKS, free_fraction=0.2, sub_sampling="random",
            join_kind="zero", seed=0,
        )
        assert zero.join_nnz > join.join_nnz

    def test_lazy_matches_eager(self, pendulum_study):
        study = pendulum_study
        eager = study.run_m2td(RANKS, seed=0)
        lazy = study.run_m2td(RANKS, lazy=True, seed=0)
        assert lazy.accuracy == pytest.approx(eager.accuracy, abs=1e-10)

    def test_pivot_choice(self, pendulum_study):
        result = pendulum_study.run_m2td(RANKS, pivot="m1", seed=0)
        assert -1.0 <= result.accuracy <= 1.0

    def test_rejects_unknown_sub_sampling(self, pendulum_study):
        with pytest.raises(SamplingError):
            pendulum_study.run_m2td(RANKS, sub_sampling="sobol")

    def test_result_row(self, pendulum_study):
        row = pendulum_study.run_m2td(RANKS, seed=0).row()
        assert {"scheme", "accuracy", "seconds", "cells", "runs", "density"} <= set(row)


class TestSubEnsembles:
    def test_cross_vs_random_cell_counts(self, pendulum_study):
        study = pendulum_study
        partition = study.default_partition()
        budget = budget_for_fractions(partition, 1.0, 0.5)
        x1c, x2c, cells_c, _ = study.sample_sub_ensembles(
            partition, budget, sub_sampling="cross", seed=0
        )
        x1r, x2r, cells_r, _ = study.sample_sub_ensembles(
            partition, budget, sub_sampling="random", seed=0
        )
        assert cells_c == cells_r
        assert x1c.nnz == x1r.nnz

    def test_sub_tensor_values_match_truth(self, pendulum_study):
        study = pendulum_study
        partition = study.default_partition()
        coords = np.array([[0, 0, 0], [5, 5, 5]])
        sub = study.sub_tensor_from_coords(partition, 1, coords)
        full = partition.embed_coords(1, coords)
        for row in range(2):
            assert sub.get(tuple(coords[row])) == pytest.approx(
                study.truth[tuple(full[row])]
            )
