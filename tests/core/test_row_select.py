"""ROW_SELECT (Algorithm 5) and the pivot-factor combiners."""

import numpy as np
import pytest

from repro.core import average_factors, row_select, row_select_source
from repro.core.row_select import align_columns
from repro.exceptions import ShapeError


class TestAlignColumns:
    def test_flips_anticorrelated_columns(self, rng):
        u1 = rng.standard_normal((6, 3))
        u2 = u1.copy()
        u2[:, 1] *= -1
        aligned = align_columns(u1, u2)
        assert np.allclose(aligned, u1)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            align_columns(rng.standard_normal((4, 2)), rng.standard_normal((5, 2)))


class TestAverageFactors:
    def test_average_of_identical_is_identity(self, rng):
        u = rng.standard_normal((5, 2))
        assert np.allclose(average_factors(u, u), u)

    def test_sign_flip_does_not_cancel(self, rng):
        u = rng.standard_normal((5, 2))
        averaged = average_factors(u, -u)
        assert np.allclose(averaged, u)  # alignment flips -u back

    def test_plain_average_when_aligned(self, rng):
        u1 = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        u2 = np.array([[3.0, 0.0], [0.0, 3.0], [1.0, 1.0]])
        assert np.allclose(average_factors(u1, u2), 0.5 * (u1 + u2))


class TestRowSelect:
    def test_picks_higher_energy_row(self):
        u1 = np.array([[2.0, 0.0], [0.1, 0.0]])
        u2 = np.array([[0.5, 0.0], [1.0, 0.0]])
        selected = row_select(u1, u2)
        assert np.allclose(selected[0], u1[0])
        assert np.allclose(selected[1], u2[1])

    def test_tie_goes_to_first(self):
        u = np.array([[1.0, 0.0]])
        assert np.allclose(row_select(u, u.copy()), u)

    def test_spectral_weighting_changes_choice(self):
        # Row norms equal in U, but singular values make side 1 the
        # higher-energy representation.
        u1 = np.array([[1.0, 0.0], [0.0, 1.0]])
        u2 = np.array([[1.0, 0.0], [0.0, 1.0]]) * 0.999
        s1 = np.array([10.0, 10.0])
        s2 = np.array([1.0, 1.0])
        selected = row_select(u1, u2, s1, s2)
        assert np.allclose(selected, u1)

    def test_rejects_bad_singular_values(self, rng):
        u = rng.standard_normal((4, 2))
        with pytest.raises(ShapeError):
            row_select(u, u, np.ones(3), np.ones(2))

    def test_output_rows_come_from_inputs(self, rng):
        u1 = rng.standard_normal((6, 3))
        u2 = rng.standard_normal((6, 3))
        aligned_u2 = align_columns(u1, u2)
        selected = row_select(u1, u2)
        for i in range(6):
            from_u1 = np.allclose(selected[i], u1[i])
            from_u2 = np.allclose(selected[i], aligned_u2[i])
            assert from_u1 or from_u2


class TestRowSelectSource:
    def test_source_labels(self):
        u1 = np.array([[2.0, 0.0], [0.1, 0.0]])
        u2 = np.array([[0.5, 0.0], [1.0, 0.0]])
        assert row_select_source(u1, u2).tolist() == [1, 2]
