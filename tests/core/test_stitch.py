"""JE-stitching: join and zero-join semantics (paper Section V-C)."""

import numpy as np
import pytest

from repro.core import join_tensor, to_original_order, zero_join_tensor
from repro.core.stitch import dense_to_original_order
from repro.core.join_tensor import dense_join_from_subs
from repro.exceptions import StitchError
from repro.sampling import PFPartition
from repro.tensor import SparseTensor

SHAPE = (3, 3, 3, 3, 3)


def partition():
    return PFPartition(SHAPE, (4,), (0, 1), (2, 3))


def full_subs(rng, part):
    x1 = SparseTensor.from_dense(
        rng.standard_normal(part.sub_shape(1)) + 3.0, keep_zeros=True
    )
    x2 = SparseTensor.from_dense(
        rng.standard_normal(part.sub_shape(2)) + 3.0, keep_zeros=True
    )
    return x1, x2


class TestJoin:
    def test_matches_dense_closed_form(self, rng):
        part = partition()
        x1, x2 = full_subs(rng, part)
        joined = join_tensor(x1, x2, part)
        dense = dense_join_from_subs(x1.to_dense(), x2.to_dense(), part)
        assert np.allclose(joined.to_dense(), dense)

    def test_average_value(self):
        part = partition()
        # one cell each, same pivot value 2
        x1 = SparseTensor(part.sub_shape(1), [[2, 0, 1]], [4.0])
        x2 = SparseTensor(part.sub_shape(2), [[2, 1, 2]], [10.0])
        joined = join_tensor(x1, x2, part)
        assert joined.nnz == 1
        # join order (pivot, s1, s2): (2, 0, 1, 1, 2)
        assert joined.get((2, 0, 1, 1, 2)) == pytest.approx(7.0)

    def test_no_pivot_match_yields_empty(self):
        part = partition()
        x1 = SparseTensor(part.sub_shape(1), [[0, 0, 0]], [1.0])
        x2 = SparseTensor(part.sub_shape(2), [[1, 0, 0]], [2.0])
        assert join_tensor(x1, x2, part).nnz == 0

    def test_entry_count_is_p_e1_e2(self, rng):
        part = partition()
        x1, x2 = full_subs(rng, part)
        joined = join_tensor(x1, x2, part)
        assert joined.nnz == 3 * 9 * 9

    def test_rejects_wrong_sub_shape(self, rng):
        part = partition()
        bad = SparseTensor((2, 2, 2), [[0, 0, 0]], [1.0])
        _x1, x2 = full_subs(rng, part)
        with pytest.raises(StitchError):
            join_tensor(bad, x2, part)


class TestZeroJoin:
    def test_reduces_to_join_on_complete_subs(self, rng):
        part = partition()
        x1, x2 = full_subs(rng, part)
        joined = join_tensor(x1, x2, part)
        zero_joined = zero_join_tensor(x1, x2, part)
        assert joined == zero_joined

    def test_one_sided_contributes_half(self):
        part = partition()
        # x1 observed at pivot 0; x2 observed only at pivot 1.
        x1 = SparseTensor(part.sub_shape(1), [[0, 0, 0]], [4.0])
        x2 = SparseTensor(part.sub_shape(2), [[1, 2, 2]], [6.0])
        zero_joined = zero_join_tensor(x1, x2, part)
        # At pivot 0: x1 pairs with candidate (2,2) as (4+0)/2.
        assert zero_joined.get((0, 0, 0, 2, 2)) == pytest.approx(2.0)
        # At pivot 1: x2 pairs with candidate (0,0) as (0+6)/2.
        assert zero_joined.get((1, 0, 0, 2, 2)) == pytest.approx(3.0)
        assert zero_joined.nnz == 2

    def test_matched_pair_still_averages(self):
        part = partition()
        x1 = SparseTensor(part.sub_shape(1), [[0, 1, 1]], [4.0])
        x2 = SparseTensor(part.sub_shape(2), [[0, 2, 0]], [8.0])
        zero_joined = zero_join_tensor(x1, x2, part)
        assert zero_joined.get((0, 1, 1, 2, 0)) == pytest.approx(6.0)
        assert zero_joined.nnz == 1

    def test_explicit_candidates(self):
        part = partition()
        x1 = SparseTensor(part.sub_shape(1), [[0, 0, 0]], [4.0])
        x2 = SparseTensor(part.sub_shape(2), [[1, 2, 2]], [6.0])
        candidates2 = np.array([[0, 0], [1, 1]])
        zero_joined = zero_join_tensor(
            x1, x2, part, candidates2=candidates2
        )
        # x1 now pairs with both explicit candidates.
        assert zero_joined.get((0, 0, 0, 0, 0)) == pytest.approx(2.0)
        assert zero_joined.get((0, 0, 0, 1, 1)) == pytest.approx(2.0)

    def test_denser_than_join_under_random_sampling(self, rng):
        part = partition()
        # Sparse random sub-ensembles: few pivot matches.
        def random_sub(which, seed):
            shape = part.sub_shape(which)
            gen = np.random.default_rng(seed)
            size = int(np.prod(shape))
            flat = gen.choice(size, size=6, replace=False)
            coords = np.stack(np.unravel_index(flat, shape), axis=1)
            return SparseTensor(shape, coords, gen.standard_normal(6))

        x1 = random_sub(1, 1)
        x2 = random_sub(2, 2)
        assert (
            zero_join_tensor(x1, x2, part).nnz
            >= join_tensor(x1, x2, part).nnz
        )


class TestOrderRestoration:
    def test_sparse_transpose_matches_dense(self, rng):
        part = partition()
        x1, x2 = full_subs(rng, part)
        joined = join_tensor(x1, x2, part)
        restored = to_original_order(joined, part)
        dense = dense_to_original_order(joined.to_dense(), part)
        assert np.allclose(restored.to_dense(), dense)

    def test_restored_join_approximates_separable_truth(self, rng):
        """If the truth is exactly pivot-separable, the restored join
        reproduces it exactly."""
        part = partition()
        a = rng.standard_normal((3, 3, 3))  # (pivot, s1 modes)
        b = rng.standard_normal((3, 3, 3))  # (pivot, s2 modes)
        # truth[phi1, m1, phi2, m2, t] = (a[t, phi1, m1] + b[t, phi2, m2]) / 2
        truth = 0.5 * (
            np.transpose(a, (1, 2, 0))[:, :, None, None, :]
            + np.transpose(b, (1, 2, 0))[None, None, :, :, :]
        )
        x1 = SparseTensor.from_dense(
            part.extract_sub_tensor(1, truth) * 0 + a, keep_zeros=True
        )
        x2 = SparseTensor.from_dense(b, keep_zeros=True)
        joined = to_original_order(join_tensor(x1, x2, part), part)
        assert np.allclose(joined.to_dense(), truth)
