"""Multiway partition-stitch (extension beyond the paper's m = 2)."""

import numpy as np
import pytest

from repro.core.multiway import (
    MWPartition,
    m2td_multiway,
    multiway_budget_cells,
    multiway_join_dense,
    multiway_study,
)
from repro.exceptions import PartitionError, StitchError
from repro.simulation import DoublePendulum, ParameterSpace

SHAPE = (4, 4, 4, 4, 4)


def partition_2way():
    return MWPartition(SHAPE, (4,), ((0, 1), (2, 3)))


def partition_4way():
    return MWPartition(SHAPE, (4,), ((0,), (1,), (2,), (3,)))


class TestMWPartition:
    def test_geometry(self):
        part = partition_4way()
        assert part.m == 4
        assert part.k == 1
        assert part.sub_modes(2) == (4, 2)
        assert part.join_modes == (4, 0, 1, 2, 3)

    def test_join_to_original_inverse(self):
        part = partition_2way()
        recovered = [part.join_modes[p] for p in part.join_to_original]
        assert recovered == list(range(5))

    def test_frozen_modes(self):
        part = partition_4way()
        assert part.frozen_modes(0) == (1, 2, 3)
        assert part.frozen_modes(3) == (0, 1, 2)

    def test_rejects_incomplete(self):
        with pytest.raises(PartitionError):
            MWPartition(SHAPE, (4,), ((0, 1), (2,)))

    def test_rejects_single_group(self):
        with pytest.raises(PartitionError):
            MWPartition(SHAPE, (4,), ((0, 1, 2, 3),))

    def test_rejects_empty_group(self):
        with pytest.raises(PartitionError):
            MWPartition(SHAPE, (4,), ((0, 1, 2, 3), ()))

    def test_as_pf_partition(self):
        pf = partition_2way().as_pf_partition()
        assert pf.pivot_modes == (4,)
        assert pf.s1_free == (0, 1)
        assert pf.s2_free == (2, 3)

    def test_as_pf_partition_needs_m2(self):
        with pytest.raises(PartitionError):
            partition_4way().as_pf_partition()

    def test_for_space_defaults_to_singletons(self):
        space = ParameterSpace(DoublePendulum(), resolution=4)
        part = MWPartition.for_space(space, pivot="t")
        assert part.m == 4
        assert all(len(g) == 1 for g in part.free_groups)

    def test_extract_sub_tensor(self, rng):
        part = partition_4way()
        full = rng.standard_normal(SHAPE)
        sub = part.extract_sub_tensor(1, full)
        assert sub.shape == (4, 4)
        fixed = part.fixed_indices
        assert sub[3, 2] == pytest.approx(
            full[fixed[0], 2, fixed[2], fixed[3], 3]
        )


class TestMultiwayJoin:
    def test_values_average_all_sides(self, rng):
        part = partition_4way()
        subs = [rng.standard_normal(part.sub_shape(i)) for i in range(4)]
        joined = multiway_join_dense(subs, part)
        assert joined.shape == (4, 4, 4, 4, 4)
        expected = 0.25 * (
            subs[0][2, 1] + subs[1][2, 0] + subs[2][2, 3] + subs[3][2, 2]
        )
        assert joined[2, 1, 0, 3, 2] == pytest.approx(expected)

    def test_m2_matches_pairwise_join(self, rng):
        from repro.core.join_tensor import dense_join_from_subs

        part = partition_2way()
        x1 = rng.standard_normal(part.sub_shape(0))
        x2 = rng.standard_normal(part.sub_shape(1))
        multiway = multiway_join_dense([x1, x2], part)
        pairwise = dense_join_from_subs(x1, x2, part.as_pf_partition())
        assert np.allclose(multiway, pairwise)

    def test_rejects_wrong_count(self, rng):
        part = partition_4way()
        with pytest.raises(StitchError):
            multiway_join_dense([rng.standard_normal((4, 4))], part)


class TestM2tdMultiway:
    def test_m2_matches_two_way_engine(self, rng):
        from repro.core.m2td import m2td_decompose

        part = partition_2way()
        x1 = rng.standard_normal(part.sub_shape(0)) + 2
        x2 = rng.standard_normal(part.sub_shape(1)) + 2
        ranks = [2] * 5
        multiway = m2td_multiway([x1, x2], part, ranks, variant="select")
        two_way = m2td_decompose(
            x1, x2, part.as_pf_partition(), ranks, variant="select"
        )
        assert np.allclose(
            multiway.tucker.core, two_way.tucker.core, atol=1e-10
        )

    @pytest.mark.parametrize("variant", ["avg", "concat", "select"])
    def test_four_way_runs(self, rng, variant):
        part = partition_4way()
        subs = [rng.standard_normal(part.sub_shape(i)) + 2 for i in range(4)]
        result = m2td_multiway(subs, part, [2] * 5, variant=variant)
        assert result.tucker.shape == SHAPE
        assert result.reconstruct_original().shape == SHAPE

    def test_rejects_unknown_variant(self, rng):
        part = partition_2way()
        subs = [rng.standard_normal(part.sub_shape(i)) for i in range(2)]
        with pytest.raises(StitchError):
            m2td_multiway(subs, part, [2] * 5, variant="median")

    def test_rejects_bad_ranks(self, rng):
        part = partition_2way()
        subs = [rng.standard_normal(part.sub_shape(i)) for i in range(2)]
        with pytest.raises(StitchError):
            m2td_multiway(subs, part, [2] * 3)


class TestMultiwayStudy:
    def test_budget_formula(self):
        assert multiway_budget_cells(partition_2way()) == 4 * (16 + 16)
        assert multiway_budget_cells(partition_4way()) == 4 * (4 * 4)

    def test_study_on_ground_truth(self, pendulum_study):
        part = MWPartition.for_space(pendulum_study.space, pivot="t")
        result, cells = multiway_study(
            pendulum_study.truth, part, [2] * 5, variant="select"
        )
        assert cells == multiway_budget_cells(part)
        assert 0 < result.accuracy(pendulum_study.truth) < 1
