"""Accuracy metric and the conventional baseline path."""

import numpy as np
import pytest

from repro.core import accuracy, decompose_sample
from repro.exceptions import ShapeError
from repro.sampling import RandomSampler, SampleSet
from repro.tensor import random_low_rank


class TestAccuracy:
    def test_perfect(self, rng):
        truth = rng.standard_normal((4, 4))
        assert accuracy(truth, truth) == pytest.approx(1.0)

    def test_zero_reconstruction(self, rng):
        truth = rng.standard_normal((4, 4))
        assert accuracy(np.zeros_like(truth), truth) == pytest.approx(0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_rejects_zero_truth(self):
        with pytest.raises(ShapeError):
            accuracy(np.ones((2, 2)), np.zeros((2, 2)))


class TestDecomposeSample:
    def test_full_sampling_of_low_rank_is_exact(self):
        truth = random_low_rank((5, 5, 5), (2, 2, 2), seed=0)
        coords = np.stack(
            np.unravel_index(np.arange(truth.size), truth.shape), axis=1
        )
        sample = SampleSet(truth.shape, coords)
        result = decompose_sample(truth, sample, [2, 2, 2])
        assert result.accuracy(truth) > 1 - 1e-9

    def test_sparse_sampling_recovers_little(self, rng):
        truth = rng.standard_normal((6, 6, 6, 6)) + 5.0
        sample = RandomSampler(seed=0).sample(truth.shape, 20)
        result = decompose_sample(truth, sample, [2] * 4)
        assert result.accuracy(truth) < 0.2

    def test_ranks_clipped(self, rng):
        truth = rng.standard_normal((3, 3, 3))
        sample = RandomSampler(seed=0).sample(truth.shape, 10)
        result = decompose_sample(truth, sample, [9, 9, 9])
        assert all(r <= 3 for r in result.tucker.rank)

    def test_timing_recorded(self, rng):
        truth = rng.standard_normal((4, 4, 4))
        sample = RandomSampler(seed=0).sample(truth.shape, 10)
        result = decompose_sample(truth, sample, [2, 2, 2])
        assert result.decompose_seconds >= 0

    def test_rejects_shape_mismatch(self, rng):
        truth = rng.standard_normal((4, 4))
        sample = RandomSampler(seed=0).sample((5, 5), 5)
        with pytest.raises(ShapeError):
            decompose_sample(truth, sample, [2, 2])
