"""Sketched and Gram M2TD on the golden study.

Two walls around the opt-in kernels at the M2TD level:

* keep_probability=1.0 is a no-op — every variant's decomposition is
  byte-identical to the exact method, so nothing silently drifts when
  users flip ``--method sketched`` with a full keep probability;
* keep_probability=0.5 on the res-6 seed-7 double-pendulum study stays
  inside the committed RMSE envelope
  (``benchmarks/envelopes/SKETCH_RMSE_ENVELOPE.json``), whose schema is
  itself checked so a hand-edited envelope cannot rot unnoticed.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import KernelError

ENVELOPE_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "envelopes" / "SKETCH_RMSE_ENVELOPE.json"
)

VARIANTS = ("avg", "concat", "select")
SEED = 7
RANK = 3


@pytest.fixture(scope="module")
def envelope():
    with ENVELOPE_PATH.open() as handle:
        return json.load(handle)


def _ranks(study):
    return [RANK] * study.space.n_modes


def _rmse(study, result):
    """Reconstruction RMSE recovered from the paper's accuracy metric:
    accuracy = 1 - ||approx - truth|| / ||truth||."""
    truth = study.truth
    return (
        (1.0 - result.accuracy)
        * np.linalg.norm(truth.ravel())
        / np.sqrt(truth.size)
    )


class TestEnvelopeSchema:
    def test_file_committed(self):
        assert ENVELOPE_PATH.is_file()

    def test_schema(self, envelope):
        assert envelope["schema_version"] == 1
        study = envelope["study"]
        assert study["system"] == "double_pendulum"
        assert study["resolution"] == 6
        assert study["seed"] == SEED
        assert study["ranks"] == [RANK] * 5
        assert 0.0 < envelope["keep_probability"] <= 1.0
        assert set(envelope["variants"]) == set(VARIANTS)
        for bounds in envelope["variants"].values():
            assert set(bounds) == {"exact_rmse", "max_rmse"}
            assert 0.0 < bounds["exact_rmse"] < bounds["max_rmse"]


class TestKeepProbabilityOne:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_byte_identical_to_exact(self, pendulum_study, variant):
        exact = pendulum_study.run_m2td(
            _ranks(pendulum_study), variant=variant, pivot="t", seed=SEED
        )
        sketched = pendulum_study.run_m2td(
            _ranks(pendulum_study), variant=variant, pivot="t", seed=SEED,
            method="sketched", keep_probability=1.0,
        )
        a, b = exact.m2td.tucker, sketched.m2td.tucker
        assert a.core.tobytes() == b.core.tobytes()
        for u_a, u_b in zip(a.factors, b.factors):
            assert u_a.tobytes() == u_b.tobytes()
        assert sketched.m2td.method == "sketched"
        assert exact.m2td.method == "exact"


class TestSketchedEnvelope:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_rmse_within_envelope(self, pendulum_study, envelope, variant):
        bounds = envelope["variants"][variant]
        result = pendulum_study.run_m2td(
            _ranks(pendulum_study), variant=variant, pivot="t", seed=SEED,
            method="sketched",
            keep_probability=envelope["keep_probability"],
        )
        rmse = _rmse(pendulum_study, result)
        assert rmse <= bounds["max_rmse"], (
            f"sketched M2TD-{variant} RMSE {rmse:.6f} exceeds the "
            f"committed envelope {bounds['max_rmse']}"
        )
        # the sketch costs accuracy but must still reconstruct: well
        # under twice the exact RMSE and strictly better than zero info
        assert rmse < 2.0 * bounds["exact_rmse"]

    def test_exact_reference_pinned(self, pendulum_study, envelope):
        """The envelope's exact_rmse entries are live numbers, not
        stale copies — recomputed here against the exact method."""
        for variant in VARIANTS:
            result = pendulum_study.run_m2td(
                _ranks(pendulum_study), variant=variant, pivot="t",
                seed=SEED,
            )
            assert _rmse(pendulum_study, result) == pytest.approx(
                envelope["variants"][variant]["exact_rmse"], abs=1e-6
            )


class TestGramMethod:
    def test_gram_m2td_close_to_exact(self, pendulum_study):
        exact = pendulum_study.run_m2td(
            _ranks(pendulum_study), variant="concat", pivot="t", seed=SEED
        )
        gram = pendulum_study.run_m2td(
            _ranks(pendulum_study), variant="concat", pivot="t", seed=SEED,
            method="gram",
        )
        assert gram.accuracy == pytest.approx(exact.accuracy, abs=1e-6)

    def test_unknown_method_rejected(self, pendulum_study):
        with pytest.raises(KernelError, match="method"):
            pendulum_study.run_m2td(
                _ranks(pendulum_study), variant="avg", seed=SEED,
                method="turbo",
            )
