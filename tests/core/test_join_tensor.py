"""Core recovery: materialized vs lazy closed form."""

import numpy as np
import pytest

from repro.core import dense_join_from_subs, lazy_core, materialized_core
from repro.core.join_tensor import (
    factor_memory_footprint,
    join_memory_footprint,
    stack_factors,
)
from repro.exceptions import StitchError
from repro.sampling import PFPartition

SHAPE = (3, 4, 3, 4, 5)


def partition():
    return PFPartition(SHAPE, (4,), (0, 1), (2, 3))


def random_setup(rng, part):
    x1 = rng.standard_normal(part.sub_shape(1))
    x2 = rng.standard_normal(part.sub_shape(2))
    ranks = [2, 2, 2, 2, 2]
    factors = []
    for axis, mode in enumerate(part.join_modes):
        rows = part.shape[mode]
        factors.append(rng.standard_normal((rows, ranks[axis])))
    return x1, x2, factors


class TestDenseJoin:
    def test_closed_form_values(self, rng):
        part = partition()
        x1, x2, _ = random_setup(rng, part)
        joined = dense_join_from_subs(x1, x2, part)
        assert joined.shape == part.join_shape
        assert joined[2, 0, 1, 2, 3] == pytest.approx(
            0.5 * (x1[2, 0, 1] + x2[2, 2, 3])
        )

    def test_rejects_pivot_mismatch(self, rng):
        part = partition()
        x1 = rng.standard_normal((5, 3, 4))
        x2 = rng.standard_normal((4, 3, 4))
        with pytest.raises(StitchError):
            dense_join_from_subs(x1, x2, part)


class TestLazyCore:
    def test_matches_materialized(self, rng):
        part = partition()
        x1, x2, factors = random_setup(rng, part)
        joined = dense_join_from_subs(x1, x2, part)
        direct = materialized_core(joined, factors)
        lazy = lazy_core(x1, x2, factors, part)
        assert np.allclose(direct, lazy)

    def test_multi_pivot(self, rng):
        part = PFPartition((3, 4, 3, 4, 5, 2), (4, 5), (0, 1), (2, 3))
        x1 = rng.standard_normal(part.sub_shape(1))
        x2 = rng.standard_normal(part.sub_shape(2))
        factors = [
            rng.standard_normal((part.shape[m], 2)) for m in part.join_modes
        ]
        joined = dense_join_from_subs(x1, x2, part)
        assert np.allclose(
            materialized_core(joined, factors),
            lazy_core(x1, x2, factors, part),
        )

    def test_rejects_wrong_factor_count(self, rng):
        part = partition()
        x1, x2, factors = random_setup(rng, part)
        with pytest.raises(StitchError):
            lazy_core(x1, x2, factors[:-1], part)

    def test_rejects_wrong_sub_shape(self, rng):
        part = partition()
        x1, x2, factors = random_setup(rng, part)
        with pytest.raises(StitchError):
            lazy_core(x1[:-1], x2, factors, part)


class TestFootprints:
    def test_join_footprint(self):
        part = partition()
        cells = np.prod(SHAPE)
        assert join_memory_footprint(part) == cells * 8

    def test_factor_footprint(self, rng):
        factors = [rng.standard_normal((4, 2)), rng.standard_normal((3, 2))]
        assert factor_memory_footprint(factors) == (8 + 6) * 8

    def test_stack_factors_order(self):
        a, b, c = np.ones((2, 1)), np.ones((3, 1)), np.ones((4, 1))
        stacked = stack_factors([a], [b], [c])
        assert [f.shape[0] for f in stacked] == [2, 3, 4]
