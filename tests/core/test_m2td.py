"""The M2TD engine: all variants, join kinds, and result invariants."""

import numpy as np
import pytest

from repro.core import m2td_avg, m2td_concat, m2td_decompose, m2td_select
from repro.core.m2td import map_ranks_to_join
from repro.exceptions import RankError, StitchError
from repro.sampling import PFPartition
from repro.tensor import SparseTensor

SHAPE = (4, 4, 4, 4, 4)
RANKS = [2] * 5


def partition():
    return PFPartition(SHAPE, (4,), (0, 1), (2, 3))


@pytest.fixture()
def subs(rng):
    part = partition()
    x1 = rng.standard_normal(part.sub_shape(1)) + 2.0
    x2 = rng.standard_normal(part.sub_shape(2)) + 2.0
    return part, x1, x2


class TestMapRanks:
    def test_reorders(self):
        part = partition()
        assert map_ranks_to_join(part, [1, 2, 3, 4, 5]) == (5, 1, 2, 3, 4)

    def test_rejects_wrong_length(self):
        with pytest.raises(RankError):
            map_ranks_to_join(partition(), [2, 2])

    def test_rejects_nonpositive(self):
        with pytest.raises(RankError):
            map_ranks_to_join(partition(), [2, 2, 2, 2, 0])


class TestEngine:
    @pytest.mark.parametrize("variant", ["avg", "concat", "select"])
    def test_variants_run(self, subs, variant):
        part, x1, x2 = subs
        result = m2td_decompose(x1, x2, part, RANKS, variant=variant)
        assert result.variant == variant
        assert result.tucker.shape == part.join_shape
        assert result.reconstruct_original().shape == SHAPE

    def test_rejects_unknown_variant(self, subs):
        part, x1, x2 = subs
        with pytest.raises(StitchError):
            m2td_decompose(x1, x2, part, RANKS, variant="median")

    def test_rejects_unknown_join_kind(self, subs):
        part, x1, x2 = subs
        with pytest.raises(StitchError):
            m2td_decompose(x1, x2, part, RANKS, join_kind="outer")

    def test_lazy_requires_join(self, subs):
        part, x1, x2 = subs
        with pytest.raises(StitchError):
            m2td_decompose(x1, x2, part, RANKS, join_kind="zero", lazy=True)

    def test_lazy_matches_materialized(self, subs):
        part, x1, x2 = subs
        eager = m2td_decompose(x1, x2, part, RANKS, variant="select")
        lazy = m2td_decompose(x1, x2, part, RANKS, variant="select", lazy=True)
        assert np.allclose(eager.tucker.core, lazy.tucker.core)
        assert lazy.join_kind == "lazy"
        assert lazy.join_nnz == 0

    def test_sparse_and_dense_inputs_agree(self, subs):
        part, x1, x2 = subs
        sparse1 = SparseTensor.from_dense(x1, keep_zeros=True)
        sparse2 = SparseTensor.from_dense(x2, keep_zeros=True)
        dense_result = m2td_decompose(x1, x2, part, RANKS, variant="select")
        sparse_result = m2td_decompose(
            sparse1, sparse2, part, RANKS, variant="select"
        )
        assert np.allclose(
            dense_result.tucker.core, sparse_result.tucker.core, atol=1e-8
        )

    def test_phase_seconds_recorded(self, subs):
        part, x1, x2 = subs
        result = m2td_decompose(x1, x2, part, RANKS)
        assert set(result.phase_seconds) == {"sub_decompose", "stitch", "core"}
        assert result.total_seconds >= 0

    def test_join_nnz_counts_entries(self, subs):
        part, x1, x2 = subs
        result = m2td_decompose(x1, x2, part, RANKS)
        assert result.join_nnz == 4 * 16 * 16

    def test_rank_clipping(self, subs):
        part, x1, x2 = subs
        result = m2td_decompose(x1, x2, part, [10] * 5)
        assert all(r <= 4 for r in result.tucker.rank)

    def test_accuracy_bounded_above_by_one(self, subs, rng):
        part, x1, x2 = subs
        truth = rng.standard_normal(SHAPE) + 2.0
        result = m2td_decompose(x1, x2, part, RANKS)
        assert result.accuracy(truth) <= 1.0

    def test_accuracy_rejects_zero_truth(self, subs):
        part, x1, x2 = subs
        result = m2td_decompose(x1, x2, part, RANKS)
        with pytest.raises(StitchError):
            result.accuracy(np.zeros(SHAPE))


class TestAlignment:
    def test_procrustes_option_runs(self, subs):
        part, x1, x2 = subs
        result = m2td_decompose(
            x1, x2, part, RANKS, variant="select", alignment="procrustes"
        )
        assert result.tucker.shape == part.join_shape

    def test_unknown_alignment_rejected(self, subs):
        part, x1, x2 = subs
        with pytest.raises(StitchError):
            m2td_decompose(x1, x2, part, RANKS, alignment="affine")

    def test_procrustes_preserves_subspace(self, subs):
        """Rotation must not change the spanned pivot subspace: the
        CONCAT-free variants' reconstructions of identical inputs only
        differ through the pivot factor's row mixing."""
        from repro.core.row_select import procrustes_align

        import numpy as np

        rng = np.random.default_rng(0)
        u1 = np.linalg.qr(rng.standard_normal((6, 3)))[0]
        u2 = np.linalg.qr(rng.standard_normal((6, 3)))[0]
        rotated = procrustes_align(u1, u2)
        # same column space as u2
        projector_before = u2 @ u2.T
        projector_after = rotated @ rotated.T
        assert np.allclose(projector_before, projector_after, atol=1e-10)
        # and at least as close to u1 as the raw basis
        assert np.linalg.norm(u1 - rotated) <= np.linalg.norm(u1 - u2) + 1e-12


class TestWrappers:
    def test_wrappers_match_engine(self, subs):
        part, x1, x2 = subs
        for wrapper, variant in (
            (m2td_avg, "avg"),
            (m2td_concat, "concat"),
            (m2td_select, "select"),
        ):
            via_wrapper = wrapper(x1, x2, part, RANKS)
            via_engine = m2td_decompose(x1, x2, part, RANKS, variant=variant)
            assert np.allclose(
                via_wrapper.tucker.core, via_engine.tucker.core
            )

    def test_exact_recovery_at_full_rank(self, rng):
        """With full per-mode ranks the stitched decomposition must
        reconstruct the join tensor to machine precision: the factor
        matrices span the whole mode spaces, so core recovery loses
        nothing."""
        part = partition()
        p = rng.standard_normal(4)
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        x1 = np.einsum("t,ij->tij", p, a)
        x2 = np.einsum("t,ij->tij", p, b)
        result = m2td_select(x1, x2, part, [4] * 5)
        from repro.core.join_tensor import dense_join_from_subs

        joined = dense_join_from_subs(x1, x2, part)
        reconstruction = result.tucker.reconstruct()
        error = np.linalg.norm(reconstruction - joined) / np.linalg.norm(joined)
        assert error < 1e-8
