"""Catalog: JSON round-trip and error handling."""

import json

import pytest

from repro.exceptions import StorageError
from repro.storage import Catalog, TensorEntry


def entry(name="t"):
    return TensorEntry(
        name=name,
        shape=(4, 5),
        block_shape=(2, 2),
        nnz=7,
        n_blocks=3,
        block_ids=[(0, 0), (1, 1), (1, 2)],
    )


class TestCatalog:
    def test_put_get(self, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.put(entry())
        got = catalog.get("t")
        assert got.shape == (4, 5)
        assert got.block_ids == [(0, 0), (1, 1), (1, 2)]

    def test_persists_across_instances(self, tmp_path):
        Catalog(tmp_path).put(entry())
        assert "t" in Catalog(tmp_path)

    def test_remove(self, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.put(entry())
        catalog.remove("t")
        assert "t" not in catalog
        assert Catalog(tmp_path).names() == []

    def test_get_missing(self, tmp_path):
        with pytest.raises(StorageError):
            Catalog(tmp_path).get("missing")

    def test_corrupt_catalog_rejected(self, tmp_path):
        (tmp_path / "catalog.json").write_text("{broken")
        with pytest.raises(StorageError):
            Catalog(tmp_path)

    def test_json_types_roundtrip(self, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.put(entry())
        raw = json.loads((tmp_path / "catalog.json").read_text())
        assert raw["tensors"]["t"]["shape"] == [4, 5]
        restored = TensorEntry.from_json(raw["tensors"]["t"])
        assert restored.shape == (4, 5)
        assert isinstance(restored.block_ids[0], tuple)
