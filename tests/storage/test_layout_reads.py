"""Micro-benchmark guard: one catalog/layout resolution per request.

``slice_query`` / ``get`` / ``iter_blocks`` resolve the tensor's
catalog entry and blocked layout once and reuse them for every block
they read.  The guard is the ``storage.catalog_lookups`` counter — a
regression that reintroduces per-block resolution multiplies it by the
block count, which these tests pin without timing anything.
"""

import numpy as np
import pytest

from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.storage import BlockTensorStore
from repro.tensor import SparseTensor


@pytest.fixture()
def store(tmp_path):
    store = BlockTensorStore(tmp_path / "db")
    dense = np.arange(512, dtype=float).reshape(8, 8, 8) + 1.0
    # 2x2x2 blocks -> 64 blocks, so per-block re-resolution would be
    # loud in the counter
    store.put("t", SparseTensor.from_dense(dense), block_shape=(2, 2, 2))
    return store


def _lookups(registry: MetricsRegistry) -> int:
    return int(registry.counter("storage.catalog_lookups").value)


class TestSingleLayoutRead:
    def test_slice_query_is_one_lookup(self, store):
        registry = MetricsRegistry()
        with use_metrics(registry):
            sparse = store.slice_query("t", mode=0, index=3)
        assert sparse.nnz == 64
        assert _lookups(registry) == 1

    def test_get_is_one_lookup(self, store):
        registry = MetricsRegistry()
        with use_metrics(registry):
            tensor = store.get("t")
        assert tensor.nnz == 512
        assert _lookups(registry) == 1

    def test_iter_blocks_is_one_lookup(self, store):
        registry = MetricsRegistry()
        with use_metrics(registry):
            blocks = list(store.iter_blocks("t"))
        assert len(blocks) == 64
        assert _lookups(registry) == 1

    def test_get_block_is_one_lookup(self, store):
        registry = MetricsRegistry()
        with use_metrics(registry):
            store.get_block("t", (0, 0, 0))
        assert _lookups(registry) == 1

    def test_lookups_scale_with_requests_not_blocks(self, store):
        registry = MetricsRegistry()
        with use_metrics(registry):
            for index in range(8):
                store.slice_query("t", mode=1, index=index)
        assert _lookups(registry) == 8
