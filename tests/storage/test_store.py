"""BlockTensorStore: persistence, queries, catalog consistency."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage import BlockTensorStore
from repro.tensor import SparseTensor, random_sparse


@pytest.fixture()
def store(tmp_path):
    return BlockTensorStore(tmp_path / "tensors")


@pytest.fixture()
def tensor():
    return random_sparse((9, 7, 5), 0.15, seed=4)


class TestPutGet:
    def test_roundtrip(self, store, tensor):
        store.put("ens", tensor, block_shape=(4, 4, 4))
        assert store.get("ens") == tensor

    def test_default_block_shape(self, store, tensor):
        entry = store.put("ens", tensor)
        assert entry.n_blocks >= 1
        assert store.get("ens") == tensor

    def test_no_silent_overwrite(self, store, tensor):
        store.put("ens", tensor)
        with pytest.raises(StorageError):
            store.put("ens", tensor)
        store.put("ens", tensor, overwrite=True)  # explicit is fine

    def test_overwrite_removes_stale_blocks(self, store):
        big = random_sparse((8, 8), 0.9, seed=1)
        small = SparseTensor((8, 8), [[0, 0]], [1.0])
        store.put("t", big, block_shape=(2, 2))
        store.put("t", small, block_shape=(8, 8), overwrite=True)
        assert store.get("t") == small

    def test_invalid_name(self, store, tensor):
        with pytest.raises(StorageError):
            store.put("../escape", tensor)

    def test_unknown_name(self, store):
        with pytest.raises(StorageError):
            store.get("nope")

    def test_names(self, store, tensor):
        store.put("b", tensor)
        store.put("a", tensor)
        assert store.names() == ["a", "b"]


class TestBlockAccess:
    def test_get_block_local_shape(self, store, tensor):
        store.put("ens", tensor, block_shape=(4, 4, 4))
        layout = store.layout("ens")
        block = store.get_block("ens", (0, 0, 0))
        assert block.shape == layout.block_extent((0, 0, 0))

    def test_empty_block_returns_empty_tensor(self, store):
        sparse = SparseTensor((8, 8), [[0, 0]], [1.0])
        store.put("t", sparse, block_shape=(4, 4))
        assert store.get_block("t", (1, 1)).nnz == 0

    def test_rejects_out_of_grid(self, store, tensor):
        store.put("ens", tensor, block_shape=(4, 4, 4))
        with pytest.raises(StorageError):
            store.get_block("ens", (9, 0, 0))

    def test_iter_blocks_covers_nnz(self, store, tensor):
        store.put("ens", tensor, block_shape=(4, 4, 4))
        total = sum(block.nnz for _id, block in store.iter_blocks("ens"))
        assert total == tensor.nnz


class TestSliceQuery:
    def test_matches_dense_slice(self, store, tensor):
        store.put("ens", tensor, block_shape=(4, 3, 2))
        dense = tensor.to_dense()
        for mode, index in [(0, 3), (1, 6), (2, 0)]:
            result = store.slice_query("ens", mode, index)
            expected = np.zeros_like(dense)
            slicer = [slice(None)] * 3
            slicer[mode] = index
            expected[tuple(slicer)] = dense[tuple(slicer)]
            assert np.allclose(result.to_dense(), expected)


class TestDelete:
    def test_delete_removes_everything(self, store, tensor):
        store.put("ens", tensor)
        store.delete("ens")
        assert store.names() == []
        with pytest.raises(StorageError):
            store.get("ens")

    def test_catalog_survives_reopen(self, tmp_path, tensor):
        path = tmp_path / "tensors"
        BlockTensorStore(path).put("ens", tensor, block_shape=(4, 4, 4))
        reopened = BlockTensorStore(path)
        assert reopened.get("ens") == tensor
