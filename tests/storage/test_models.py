"""Tucker model persistence."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage import load_tucker, save_tucker
from repro.tensor import hosvd, random_low_rank


@pytest.fixture()
def model():
    tensor = random_low_rank((6, 7, 5), (2, 3, 2), seed=0)
    return hosvd(tensor, (2, 3, 2))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, model):
        path = save_tucker(tmp_path / "model.npz", model)
        loaded, meta = load_tucker(path)
        assert np.allclose(loaded.reconstruct(), model.reconstruct())
        assert meta == {}

    def test_metadata_roundtrip(self, tmp_path, model):
        path = save_tucker(
            tmp_path / "model", model, metadata={"rank": [2, 3, 2]}
        )
        assert path.suffix == ".npz"
        _loaded, meta = load_tucker(path)
        assert meta == {"rank": [2, 3, 2]}

    def test_rejects_unserializable_metadata(self, tmp_path, model):
        with pytest.raises(StorageError):
            save_tucker(tmp_path / "m", model, metadata={"x": object()})

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_tucker(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip")
        with pytest.raises(StorageError):
            load_tucker(path)

    def test_factor_order_preserved(self, tmp_path, model):
        path = save_tucker(tmp_path / "model.npz", model)
        loaded, _meta = load_tucker(path)
        for original, restored in zip(model.factors, loaded.factors):
            assert np.allclose(original, restored)
