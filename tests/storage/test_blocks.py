"""Blocked layout geometry and split/assemble roundtrip."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage import (
    BlockedLayout,
    assemble_from_blocks,
    split_into_blocks,
)
from repro.tensor import random_sparse


class TestBlockedLayout:
    def test_grid_shape_rounds_up(self):
        layout = BlockedLayout((9, 7), (4, 4))
        assert layout.grid_shape == (3, 2)
        assert layout.n_blocks == 6

    def test_block_of(self):
        layout = BlockedLayout((9, 7), (4, 4))
        ids = layout.block_of(np.array([[0, 0], [4, 3], [8, 6]]))
        assert ids.tolist() == [[0, 0], [1, 0], [2, 1]]

    def test_ragged_edge_extent(self):
        layout = BlockedLayout((9, 7), (4, 4))
        assert layout.block_extent((2, 1)) == (1, 3)
        assert layout.block_extent((0, 0)) == (4, 4)

    def test_blocks_touching_slice(self):
        layout = BlockedLayout((9, 7), (4, 4))
        touching = list(layout.blocks_touching_slice(0, 5))
        assert all(b[0] == 1 for b in touching)
        assert len(touching) == 2

    def test_rejects_bad_slice(self):
        layout = BlockedLayout((9, 7), (4, 4))
        with pytest.raises(StorageError):
            list(layout.blocks_touching_slice(0, 9))
        with pytest.raises(StorageError):
            list(layout.blocks_touching_slice(5, 0))

    def test_rejects_bad_block_shape(self):
        with pytest.raises(StorageError):
            BlockedLayout((4, 4), (4,))
        with pytest.raises(StorageError):
            BlockedLayout((4, 4), (0, 4))


class TestSplitAssemble:
    def test_roundtrip(self):
        tensor = random_sparse((9, 7, 5), 0.2, seed=1)
        layout = BlockedLayout(tensor.shape, (4, 3, 2))
        blocks = split_into_blocks(tensor, layout)
        assert assemble_from_blocks(layout, blocks) == tensor

    def test_local_coordinates(self):
        tensor = random_sparse((8, 8), 0.3, seed=2)
        layout = BlockedLayout((8, 8), (4, 4))
        blocks = split_into_blocks(tensor, layout)
        for block_id, block in blocks.items():
            extent = layout.block_extent(block_id)
            assert block.shape == extent
            assert (block.coords < np.asarray(extent)).all()

    def test_empty_tensor(self):
        from repro.tensor import SparseTensor

        layout = BlockedLayout((4, 4), (2, 2))
        assert split_into_blocks(SparseTensor((4, 4)), layout) == {}

    def test_values_preserved(self):
        tensor = random_sparse((6, 6), 0.5, seed=3)
        layout = BlockedLayout((6, 6), (5, 5))
        blocks = split_into_blocks(tensor, layout)
        total_nnz = sum(b.nnz for b in blocks.values())
        assert total_nnz == tensor.nnz

    def test_rejects_shape_mismatch(self):
        tensor = random_sparse((6, 6), 0.5, seed=3)
        layout = BlockedLayout((5, 5), (2, 2))
        with pytest.raises(StorageError):
            split_into_blocks(tensor, layout)
