"""Spec-validation wall: every malformed campaign spec dies with a
typed, field-naming :class:`~repro.exceptions.CampaignSpecError` —
never a bare ``KeyError`` or a stack trace from deep inside numpy."""

import json

import pytest

from repro.campaigns import CampaignSpec
from repro.exceptions import (
    CampaignError,
    CampaignSpecError,
    ReproError,
)

GOOD = {
    "scenario": "epidemic_seir",
    "budget": 200,
    "batch": 24,
    "success_delta": 0.001,
}


def make(**overrides):
    payload = dict(GOOD)
    payload.update(overrides)
    return CampaignSpec.from_dict(payload)


class TestTyping:
    def test_spec_error_is_campaign_error_and_value_error(self):
        error = CampaignSpecError("budget", "bad")
        assert isinstance(error, CampaignError)
        assert isinstance(error, ReproError)
        assert isinstance(error, ValueError)

    def test_error_carries_field_and_detail(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(budget=0)
        assert excinfo.value.field == "budget"
        assert "budget" in str(excinfo.value)

    def test_error_survives_pickling(self):
        import pickle

        error = CampaignSpecError("metric", "unknown value")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.field == "metric"
        assert clone.detail == "unknown value"


class TestRequiredFields:
    @pytest.mark.parametrize(
        "missing", ["scenario", "budget", "batch", "success_delta"]
    )
    def test_missing_required_field_names_it(self, missing):
        payload = {k: v for k, v in GOOD.items() if k != missing}
        with pytest.raises(CampaignSpecError) as excinfo:
            CampaignSpec.from_dict(payload)
        assert excinfo.value.field == missing

    def test_unknown_field_names_it(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            CampaignSpec.from_dict({**GOOD, "bugdet": 100})
        assert excinfo.value.field == "bugdet"

    def test_non_mapping_payload(self):
        with pytest.raises(CampaignSpecError):
            CampaignSpec.from_dict(["scenario", "budget"])


class TestFieldValidation:
    def test_unknown_scenario(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(scenario="cold_fusion")
        assert excinfo.value.field == "scenario"

    @pytest.mark.parametrize("budget", [0, -5, 2.5, "lots", True])
    def test_bad_budget(self, budget):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(budget=budget)
        assert excinfo.value.field == "budget"

    def test_batch_exceeding_budget(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(budget=10, batch=11)
        assert excinfo.value.field == "batch"

    @pytest.mark.parametrize(
        "delta", [-0.1, float("nan"), float("inf"), "small", None]
    )
    def test_bad_success_delta(self, delta):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(success_delta=delta)
        assert excinfo.value.field == "success_delta"

    def test_zero_success_delta_is_legal(self):
        assert make(success_delta=0.0).success_delta == 0.0

    def test_unknown_metric(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(metric="vibes")
        assert excinfo.value.field == "metric"

    def test_unknown_allocation(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(allocation="psychic")
        assert excinfo.value.field == "allocation"

    def test_unknown_variant(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(variant="mash")
        assert excinfo.value.field == "variant"

    @pytest.mark.parametrize("fraction", [0.0, -0.2, 1.5, "half"])
    def test_bad_explore_fraction(self, fraction):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(explore_fraction=fraction)
        assert excinfo.value.field == "explore_fraction"

    def test_empty_pivot(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            make(pivot="")
        assert excinfo.value.field == "pivot"

    def test_default_name_derives_from_scenario(self):
        assert make().name == "epidemic_seir-campaign"
        assert make(name="pinned").name == "pinned"


class TestFiles:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(GOOD))
        spec = CampaignSpec.from_file(str(path))
        assert spec.scenario == "epidemic_seir"
        assert spec.budget == 200

    def test_yaml_round_trip(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "campaign.yaml"
        path.write_text(yaml.safe_dump(GOOD))
        spec = CampaignSpec.from_file(str(path))
        assert spec.batch == 24

    def test_malformed_json_names_the_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text("{not json")
        with pytest.raises(CampaignSpecError) as excinfo:
            CampaignSpec.from_file(str(path))
        assert excinfo.value.field == str(path)

    def test_malformed_yaml_names_the_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "campaign.yaml"
        path.write_text("scenario: [unclosed")
        with pytest.raises(CampaignSpecError) as excinfo:
            CampaignSpec.from_file(str(path))
        assert excinfo.value.field == str(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignSpecError):
            CampaignSpec.from_file(str(tmp_path / "nope.yaml"))

    def test_unknown_extension_falls_back_to_json(self, tmp_path):
        path = tmp_path / "campaign.spec"
        path.write_text(json.dumps(GOOD))
        assert CampaignSpec.from_file(str(path)).budget == 200

    def test_spec_file_with_unknown_field(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps({**GOOD, "turbo": True}))
        with pytest.raises(CampaignSpecError) as excinfo:
            CampaignSpec.from_file(str(path))
        assert excinfo.value.field == "turbo"


class TestIdentity:
    def test_fingerprint_stable(self):
        assert make().fingerprint() == make().fingerprint()

    def test_fingerprint_moves_with_any_knob(self):
        base = make().fingerprint()
        assert make(seed=1).fingerprint() != base
        assert make(batch=23).fingerprint() != base
        assert make(allocation="uniform").fingerprint() != base

    def test_as_dict_round_trips(self):
        spec = make(seed=3, allocation="uniform")
        assert CampaignSpec.from_dict(spec.as_dict()) == spec
