"""Property suite for the confirm-round budget allocator.

The allocator's contract (`repro.campaigns.allocator.allocate`) is
exactly what campaign budget safety rests on, so each clause is pinned
by a hypothesis property rather than examples:

* every allocation is a non-negative integer;
* the total never exceeds the remaining budget;
* without capacity caps the total equals the (clamped) round batch;
* allocations are monotone in error — more mismatch never means
  fewer cells.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import allocate
from repro.exceptions import CampaignError

errors_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=32,
).map(lambda xs: np.array(xs))


@settings(max_examples=200, deadline=None)
@given(errors=errors_strategy, batch=st.integers(0, 500))
def test_nonnegative_integers(errors, batch):
    shares = allocate(errors, batch)
    assert shares.dtype.kind == "i"
    assert (shares >= 0).all()


@settings(max_examples=200, deadline=None)
@given(
    errors=errors_strategy,
    batch=st.integers(0, 500),
    remaining=st.integers(0, 500),
)
def test_never_exceeds_remaining_budget(errors, batch, remaining):
    shares = allocate(errors, batch, remaining_budget=remaining)
    assert int(shares.sum()) <= remaining


@settings(max_examples=200, deadline=None)
@given(errors=errors_strategy, batch=st.integers(0, 500))
def test_sums_exactly_to_batch(errors, batch):
    """Without caps every cell of the batch is handed out."""
    shares = allocate(errors, batch)
    assert int(shares.sum()) == batch


@settings(max_examples=200, deadline=None)
@given(
    errors=errors_strategy,
    batch=st.integers(0, 500),
    remaining=st.integers(0, 500),
)
def test_sums_to_clamped_batch(errors, batch, remaining):
    shares = allocate(errors, batch, remaining_budget=remaining)
    assert int(shares.sum()) == min(batch, remaining)


@settings(max_examples=200, deadline=None)
@given(errors=errors_strategy, batch=st.integers(0, 500))
def test_monotone_in_error(errors, batch):
    """A candidate with higher error never gets fewer cells."""
    shares = allocate(errors, batch)
    for i in range(len(errors)):
        for j in range(len(errors)):
            if errors[i] < errors[j]:
                assert shares[i] <= shares[j], (
                    f"error {errors[i]} got {shares[i]} cells but "
                    f"error {errors[j]} got {shares[j]}"
                )


@settings(max_examples=200, deadline=None)
@given(
    errors=errors_strategy,
    batch=st.integers(0, 500),
    cap=st.integers(0, 40),
)
def test_respects_uniform_capacities(errors, batch, cap):
    caps = np.full(errors.shape[0], cap, dtype=int)
    shares = allocate(errors, batch, capacities=caps)
    assert (shares <= caps).all()
    assert int(shares.sum()) == min(batch, int(caps.sum()))


@settings(max_examples=200, deadline=None)
@given(
    errors=errors_strategy,
    batch=st.integers(0, 500),
    seed=st.integers(0, 2**31 - 1),
)
def test_respects_ragged_capacities(errors, batch, seed):
    caps = np.random.default_rng(seed).integers(
        0, 20, size=errors.shape[0]
    )
    shares = allocate(errors, batch, capacities=caps)
    assert (shares <= caps).all()
    assert int(shares.sum()) == min(batch, int(caps.sum()))


@settings(max_examples=100, deadline=None)
@given(n=st.integers(1, 32), batch=st.integers(0, 500))
def test_equal_errors_split_evenly(n, batch):
    """All-equal (including all-zero) errors degrade to a fair split:
    no candidate is ever more than one cell ahead of another."""
    for value in (0.0, 1.0):
        shares = allocate(np.full(n, value), batch)
        assert int(shares.sum()) == batch
        assert int(shares.max()) - int(shares.min()) <= 1


@settings(max_examples=100, deadline=None)
@given(errors=errors_strategy, batch=st.integers(0, 500))
def test_deterministic(errors, batch):
    first = allocate(errors, batch)
    second = allocate(errors, batch)
    assert (first == second).all()


class TestValidation:
    def test_rejects_negative_errors(self):
        with pytest.raises(CampaignError):
            allocate([1.0, -0.5], 10)

    def test_rejects_nan_errors(self):
        with pytest.raises(CampaignError):
            allocate([1.0, float("nan")], 10)

    def test_rejects_negative_batch(self):
        with pytest.raises(CampaignError):
            allocate([1.0], -1)

    def test_rejects_matrix_errors(self):
        with pytest.raises(CampaignError):
            allocate(np.ones((2, 2)), 10)

    def test_rejects_mismatched_capacities(self):
        with pytest.raises(CampaignError):
            allocate([1.0, 2.0], 10, capacities=[1])

    def test_rejects_negative_capacities(self):
        with pytest.raises(CampaignError):
            allocate([1.0, 2.0], 10, capacities=[1, -1])

    def test_empty_errors_allocate_nothing(self):
        shares = allocate([], 10)
        assert shares.shape == (0,)
