"""End-to-end campaign runs: phased rounds, stopping rules, budget
safety, observability, and the run/resume state contract."""

import numpy as np
import pytest

from repro.campaigns import (
    CampaignOrchestrator,
    CampaignSpec,
    read_journal,
)
from repro.campaigns.cli import main as campaigns_main
from repro.exceptions import CampaignSpecError, CampaignStateError
from repro.observability import Tracer, use_tracer
from repro.observability.metrics import MetricsRegistry, use_metrics

from .conftest import spec_with


def run_campaign(spec, epidemic_study, workdir=None, **kwargs):
    with CampaignOrchestrator(
        spec, workdir=workdir, study=epidemic_study, **kwargs
    ) as orchestrator:
        return orchestrator.run()


class TestEndToEnd:
    def test_success_delta_stops_within_budget(self, epidemic_study):
        """The headline contract: a generous success delta stops the
        campaign via the convergence rule with budget left over."""
        spec = spec_with(
            budget=432, success_delta=0.5, max_rounds=12
        )
        outcome = run_campaign(spec, epidemic_study)
        assert outcome.stop_reason == "converged"
        assert outcome.cells_simulated <= spec.budget
        assert outcome.budget_remaining > 0
        confirm = [r for r in outcome.rounds if r.phase == "confirm"]
        assert len(confirm) >= 2
        movement = abs(confirm[-2].metric - confirm[-1].metric)
        assert movement < spec.success_delta

    def test_phases_and_budget_accounting(self, epidemic_study):
        outcome = run_campaign(spec_with(), epidemic_study)
        assert outcome.rounds[0].phase == "explore"
        assert all(
            r.phase == "confirm" for r in outcome.rounds[1:]
        )
        spent = [r.spent_after for r in outcome.rounds]
        assert spent == sorted(spent)
        assert outcome.cells_simulated == spent[-1]
        assert outcome.cells_simulated <= outcome.spec.budget
        # per-round accounting is internally consistent
        previous = 0
        for r in outcome.rounds:
            assert r.spent_after - previous == r.probe_cost + r.alloc_cells
            new = sum(len(c) for c in r.new_cells.values())
            assert new == r.probe_cost + r.alloc_cells
            previous = r.spent_after

    def test_max_rounds_stop(self, epidemic_study):
        outcome = run_campaign(
            spec_with(max_rounds=2, budget=432), epidemic_study
        )
        assert outcome.stop_reason == "max-rounds"
        confirm = [r for r in outcome.rounds if r.phase == "confirm"]
        assert len(confirm) == 2

    def test_budget_exhausted_stop(self, epidemic_study):
        outcome = run_campaign(
            spec_with(budget=80, batch=40, max_rounds=12),
            epidemic_study,
        )
        assert outcome.stop_reason == "budget-exhausted"
        assert outcome.budget_remaining == 0
        assert outcome.cells_simulated == 80

    def test_space_exhausted_stop(self, epidemic_study):
        """A budget larger than the whole sub-space ends only when
        every cell is covered."""
        outcome = run_campaign(
            spec_with(
                budget=432 * 2, batch=100, max_rounds=50,
                explore_fraction=1.0, explore_replicates=6,
            ),
            epidemic_study,
        )
        assert outcome.stop_reason == "space-exhausted"
        assert outcome.cells_simulated <= 432

    def test_uniform_allocation_runs(self, epidemic_study):
        outcome = run_campaign(
            spec_with(allocation="uniform"), epidemic_study
        )
        assert outcome.stop_reason in (
            "converged", "budget-exhausted", "max-rounds"
        )

    def test_deterministic_across_runs(self, epidemic_study):
        first = run_campaign(spec_with(), epidemic_study)
        second = run_campaign(spec_with(), epidemic_study)
        assert first.payload() == second.payload()
        assert [r.body() for r in first.rounds] == [
            r.body() for r in second.rounds
        ]

    def test_seed_changes_the_campaign(self, epidemic_study):
        first = run_campaign(spec_with(), epidemic_study)
        other = run_campaign(spec_with(seed=8), epidemic_study)
        assert first.payload() != other.payload()

    def test_infeasible_explore_budget(self, epidemic_study):
        with pytest.raises(CampaignSpecError) as excinfo:
            CampaignOrchestrator(
                spec_with(
                    budget=24, batch=24, explore_fraction=1.0,
                    explore_replicates=6,
                ),
                study=epidemic_study,
            )
        assert excinfo.value.field == "budget"


class TestObservability:
    def test_campaign_meters(self, epidemic_study):
        registry = MetricsRegistry()
        with use_metrics(registry):
            outcome = run_campaign(spec_with(), epidemic_study)
        snapshot = registry.snapshot()
        assert snapshot["campaign.rounds"]["value"] == len(
            outcome.rounds
        )
        assert snapshot["campaign.cells_simulated"]["value"] == (
            outcome.cells_simulated
        )
        assert snapshot["campaign.budget_remaining"]["value"] == (
            outcome.budget_remaining
        )

    def test_campaign_spans(self, epidemic_study):
        tracer = Tracer()
        with use_tracer(tracer):
            outcome = run_campaign(spec_with(), epidemic_study)
        campaign_spans = [
            s for s in tracer.iter_spans() if s.category == "campaign"
        ]
        names = {s.name for s in campaign_spans}
        assert f"campaign:{outcome.spec.name}" in names
        assert "round-0" in names
        # one span per round, nested under the campaign root
        rounds = [s for s in campaign_spans if s.name.startswith("round-")]
        assert len(rounds) == len(outcome.rounds)


class TestStateContract:
    def test_run_refuses_existing_progress(
        self, campaign_spec, epidemic_study, tmp_path
    ):
        workdir = str(tmp_path / "campaign")
        run_campaign(campaign_spec, epidemic_study, workdir=workdir)
        with pytest.raises(CampaignStateError):
            run_campaign(campaign_spec, epidemic_study, workdir=workdir)

    def test_resume_rejects_foreign_journal(
        self, campaign_spec, epidemic_study, tmp_path
    ):
        workdir = str(tmp_path / "campaign")
        run_campaign(campaign_spec, epidemic_study, workdir=workdir)
        other = spec_with(seed=9)
        with CampaignOrchestrator(
            other, workdir=workdir, study=epidemic_study
        ) as orchestrator:
            with pytest.raises(CampaignStateError):
                orchestrator.resume()

    def test_resume_on_empty_workdir_is_a_fresh_run(
        self, campaign_spec, epidemic_study, tmp_path
    ):
        workdir = str(tmp_path / "campaign")
        with CampaignOrchestrator(
            campaign_spec, workdir=workdir, study=epidemic_study
        ) as orchestrator:
            outcome = orchestrator.resume()
        assert outcome.replayed_rounds == 0
        assert outcome.stop_reason is not None

    def test_journal_readable_without_running(
        self, campaign_spec, epidemic_study, tmp_path
    ):
        workdir = str(tmp_path / "campaign")
        outcome = run_campaign(
            campaign_spec, epidemic_study, workdir=workdir
        )
        state, _ = read_journal(workdir)
        assert state.stop_reason == outcome.stop_reason
        assert state.spent == outcome.cells_simulated
        assert len(state.rounds) == len(outcome.rounds)
        assert state.fingerprint == campaign_spec.fingerprint()


class TestTruthMetrics:
    def test_truth_rmse_recorded_and_improving(self, epidemic_study):
        outcome = run_campaign(
            spec_with(), epidemic_study, truth_metrics=True
        )
        values = [r.truth_rmse for r in outcome.rounds]
        assert all(v is not None and np.isfinite(v) for v in values)
        assert values[-1] < values[0]

    def test_truth_rmse_off_by_default(self, epidemic_study):
        outcome = run_campaign(spec_with(), epidemic_study)
        assert all(r.truth_rmse is None for r in outcome.rounds)


class TestCli:
    def write_spec(self, tmp_path):
        import json

        from .conftest import SPEC_FIELDS

        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(SPEC_FIELDS))
        return str(path)

    def test_run_report_resume(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        workdir = str(tmp_path / "wd")
        assert campaigns_main(
            ["run", "--spec", spec_path, "--workdir", workdir]
        ) == 0
        out = capsys.readouterr().out
        assert "epidemic_seir-campaign" in out
        assert campaigns_main(["report", "--workdir", workdir]) == 0
        assert "explore" in capsys.readouterr().out
        # run again refuses; resume replays
        assert campaigns_main(
            ["run", "--spec", spec_path, "--workdir", workdir]
        ) == 1
        assert "use resume" in capsys.readouterr().err
        assert campaigns_main(
            ["resume", "--spec", spec_path, "--workdir", workdir]
        ) == 0

    def test_report_json(self, tmp_path, capsys):
        import json

        spec_path = self.write_spec(tmp_path)
        workdir = str(tmp_path / "wd")
        campaigns_main(
            ["run", "--spec", spec_path, "--workdir", workdir]
        )
        capsys.readouterr()
        assert campaigns_main(
            ["report", "--workdir", workdir, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stop_reason"] is not None
        assert payload["rounds"]

    def test_bad_spec_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"scenario": "epidemic_seir"}')
        assert campaigns_main(["run", "--spec", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
