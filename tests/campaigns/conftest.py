"""Campaign-suite fixtures: one tiny epidemic spec, one shared study.

The epidemic study at resolution 6 is the campaign workhorse (the
golden regression pins it at seed 7); building it once per session
keeps the whole suite cheap.
"""

from __future__ import annotations

import pytest

from repro.campaigns import CampaignSpec
from repro.core import EnsembleStudy
from repro.simulation import make_system

#: Small enough for quick rounds, big enough for several of them.
SPEC_FIELDS = dict(
    scenario="epidemic_seir",
    budget=200,
    batch=24,
    success_delta=1e-9,
    seed=7,
    resolution=6,
    max_rounds=4,
)


@pytest.fixture(scope="session")
def epidemic_study() -> EnsembleStudy:
    return EnsembleStudy.create(make_system("epidemic_seir"), 6)


@pytest.fixture()
def campaign_spec() -> CampaignSpec:
    return CampaignSpec(**SPEC_FIELDS)


def spec_with(**overrides) -> CampaignSpec:
    fields = dict(SPEC_FIELDS)
    fields.update(overrides)
    return CampaignSpec(**fields)
