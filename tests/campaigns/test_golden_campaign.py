"""Golden convergence regression for adaptive campaigns.

The pinned run: epidemic-SEIR study at resolution 6, campaign seed 7,
budget 380 cells, batch 24, twelve confirm rounds, evaluation-only
ground-truth RMSE recorded per round.  The pins prove the point of the
campaign layer — **error-guided allocation reaches a fixed RMSE target
in fewer simulated cells than uniform allocation** — and freeze the
trajectory so an accidental change to the allocator, the probe-pivot
policy, or the stopping rule shows up as a diff against named
constants, not a silent quality drift.

Computed once from a verified run; the campaign is deterministic given
the seed, so anything beyond float noise means an algorithmic change —
which should be deliberate and update these constants in the same
commit.
"""

import pytest

from repro.campaigns import CampaignOrchestrator, CampaignSpec

SEED = 7
BUDGET = 380

#: The fixed quality bar both strategies chase.
RMSE_TARGET = 0.32

#: Simulated cells at which each strategy first reaches the target.
GOLDEN_CELLS_TO_TARGET = {"adaptive": 298, "uniform": 351}

#: Ground-truth RMSE after the full budget.
GOLDEN_FINAL_RMSE = {
    "adaptive": 0.21644738796467478,
    "uniform": 0.3117041735327742,
}

#: RMSE of the shared explore round (identical for both strategies —
#: allocation only kicks in at the confirm rounds).
GOLDEN_EXPLORE_RMSE = 0.49744978036874793

RMSE_TOL = 1e-6


def campaign_spec(allocation):
    return CampaignSpec(
        scenario="epidemic_seir",
        budget=BUDGET,
        batch=24,
        success_delta=1e-9,
        seed=SEED,
        resolution=6,
        allocation=allocation,
        max_rounds=12,
    )


@pytest.fixture(scope="module")
def outcomes(epidemic_study):
    results = {}
    for allocation in ("adaptive", "uniform"):
        with CampaignOrchestrator(
            campaign_spec(allocation),
            study=epidemic_study,
            truth_metrics=True,
        ) as orchestrator:
            results[allocation] = orchestrator.run()
    return results


def cells_to_target(outcome):
    for record in outcome.rounds:
        if record.truth_rmse <= RMSE_TARGET:
            return record.spent_after
    return None


class TestAdaptiveBeatsUniform:
    def test_reaches_target_in_fewer_cells(self, outcomes):
        """The headline claim of the campaign layer."""
        adaptive = cells_to_target(outcomes["adaptive"])
        uniform = cells_to_target(outcomes["uniform"])
        assert adaptive is not None
        assert uniform is not None
        assert adaptive < uniform

    def test_cells_to_target_pinned(self, outcomes):
        for allocation, expected in GOLDEN_CELLS_TO_TARGET.items():
            assert cells_to_target(outcomes[allocation]) == expected

    def test_final_rmse_pinned(self, outcomes):
        for allocation, expected in GOLDEN_FINAL_RMSE.items():
            final = outcomes[allocation].rounds[-1].truth_rmse
            assert final == pytest.approx(expected, abs=RMSE_TOL)

    def test_adaptive_final_model_is_better(self, outcomes):
        assert (
            outcomes["adaptive"].rounds[-1].truth_rmse
            < outcomes["uniform"].rounds[-1].truth_rmse
        )


class TestTrajectoryShape:
    def test_both_spend_the_whole_budget(self, outcomes):
        for outcome in outcomes.values():
            assert outcome.stop_reason == "budget-exhausted"
            assert outcome.cells_simulated == BUDGET
            assert outcome.budget_remaining == 0

    def test_explore_round_is_shared(self, outcomes):
        """Round 0 precedes any allocation decision, so both
        strategies start from the identical model."""
        for outcome in outcomes.values():
            first = outcome.rounds[0]
            assert first.phase == "explore"
            assert first.spent_after == 36
            assert first.truth_rmse == pytest.approx(
                GOLDEN_EXPLORE_RMSE, abs=RMSE_TOL
            )

    def test_rmse_improves_monotonically_enough(self, outcomes):
        """Coarse shape guard: the trajectory must never regress by
        more than float jitter between consecutive rounds for the
        adaptive strategy."""
        values = [
            r.truth_rmse for r in outcomes["adaptive"].rounds
        ]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-3
