"""Chaos suite for campaign resume.

Kill a campaign mid-round (``campaign.round`` raise / crash-worker),
bit-flip its journal (``campaign.state`` corrupt), or fault the task
graph underneath it (``runtime.task``, ``cache.read``) — in every case
a plain ``resume`` must finish the campaign with a journal and a final
decomposition byte-identical to an uninterrupted run, and the healed
faults must be metered as ``faults.recovered``.

Seeded by ``M2TD_CHAOS_SEED`` like the rest of the chaos tests: CI
runs a seed matrix, failures replay locally from one exported value.
"""

import os
import shutil

import pytest

from repro.campaigns import CampaignOrchestrator
from repro.exceptions import FaultInjectionError
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.observability.metrics import MetricsRegistry, use_metrics

from .conftest import spec_with


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    """The uninterrupted baseline every chaos scenario must match."""
    workdir = str(tmp_path_factory.mktemp("campaign-clean") / "wd")
    spec = spec_with()
    with CampaignOrchestrator(spec, workdir=workdir) as orchestrator:
        outcome = orchestrator.run()
    with open(os.path.join(workdir, "journal.jsonl"), "rb") as handle:
        journal = handle.read()
    return {
        "spec": spec,
        "journal": journal,
        "payload": outcome.payload(),
        "stop_reason": outcome.stop_reason,
    }


def journal_bytes(workdir):
    with open(os.path.join(workdir, "journal.jsonl"), "rb") as handle:
        return handle.read()


def interrupt_then_resume(workdir, plan, clean_run, expect_raise=True):
    """Run under ``plan`` (expecting the injected death), then resume
    fault-free and hand back (outcome, injector summary)."""
    spec = clean_run["spec"]
    injector = FaultInjector(plan)
    if expect_raise:
        with use_injector(injector):
            with pytest.raises(FaultInjectionError):
                with CampaignOrchestrator(
                    spec, workdir=workdir
                ) as orchestrator:
                    orchestrator.run()
    else:
        with use_injector(injector):
            with CampaignOrchestrator(
                spec, workdir=workdir
            ) as orchestrator:
                orchestrator.run()
    with CampaignOrchestrator(spec, workdir=workdir) as resumed:
        outcome = resumed.resume()
    return outcome, injector.summary()


class TestRoundInterrupts:
    @pytest.mark.parametrize("round_index", [1, 2, 3])
    def test_raise_mid_campaign_resumes_byte_identical(
        self, round_index, clean_run, chaos_seed, tmp_path
    ):
        workdir = str(tmp_path / "wd")
        plan = plan_of(
            [FaultSpec(
                site="campaign.round", kind="raise",
                target=f"*/round-{round_index}",
            )],
            seed=chaos_seed,
        )
        outcome, summary = interrupt_then_resume(
            workdir, plan, clean_run
        )
        assert summary["injected"] == 1
        assert outcome.replayed_rounds == round_index
        assert outcome.stop_reason == clean_run["stop_reason"]
        assert journal_bytes(workdir) == clean_run["journal"]
        assert outcome.payload() == clean_run["payload"]

    def test_crash_worker_kind_also_heals(
        self, clean_run, chaos_seed, tmp_path
    ):
        workdir = str(tmp_path / "wd")
        plan = plan_of(
            [FaultSpec(
                site="campaign.round", kind="crash-worker",
                target="*/round-2",
            )],
            seed=chaos_seed,
        )
        outcome, _ = interrupt_then_resume(workdir, plan, clean_run)
        assert journal_bytes(workdir) == clean_run["journal"]
        assert outcome.payload() == clean_run["payload"]

    def test_repeated_interrupts_still_converge(
        self, clean_run, chaos_seed, tmp_path
    ):
        """Die in round 1, resume and die in round 3, resume again."""
        workdir = str(tmp_path / "wd")
        spec = clean_run["spec"]
        for round_index in (1, 3):
            plan = plan_of(
                [FaultSpec(
                    site="campaign.round", kind="raise",
                    target=f"*/round-{round_index}",
                )],
                seed=chaos_seed,
            )
            with use_injector(FaultInjector(plan)):
                with pytest.raises(FaultInjectionError):
                    with CampaignOrchestrator(
                        spec, workdir=workdir
                    ) as orchestrator:
                        orchestrator.resume()
        with CampaignOrchestrator(spec, workdir=workdir) as final:
            outcome = final.resume()
        assert journal_bytes(workdir) == clean_run["journal"]
        assert outcome.payload() == clean_run["payload"]


class TestJournalCorruption:
    def test_corrupt_journal_quarantined_and_recovered(
        self, clean_run, chaos_seed, tmp_path
    ):
        workdir = str(tmp_path / "wd")
        spec = clean_run["spec"]
        with CampaignOrchestrator(spec, workdir=workdir) as first:
            first.run()
        plan = plan_of(
            [FaultSpec(site="campaign.state", kind="corrupt")],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)
        registry = MetricsRegistry()
        with use_metrics(registry), use_injector(injector):
            with CampaignOrchestrator(spec, workdir=workdir) as again:
                outcome = again.resume()
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["recovered"] >= 1
        snapshot = registry.snapshot()
        assert snapshot["faults.recovered"]["value"] >= 1
        assert snapshot["campaign.journal_quarantined"]["value"] >= 1
        # the healed journal and model match the clean run exactly
        assert journal_bytes(workdir) == clean_run["journal"]
        assert outcome.payload() == clean_run["payload"]

    def test_corrupt_resume_runs_off_the_cache(
        self, clean_run, chaos_seed, tmp_path
    ):
        """Rounds lost to journal damage re-run as pure cache hits —
        zero integrator work is re-done."""
        workdir = str(tmp_path / "wd")
        spec = clean_run["spec"]
        with CampaignOrchestrator(spec, workdir=workdir) as first:
            first.run()
        plan = plan_of(
            [FaultSpec(site="campaign.state", kind="corrupt")],
            seed=chaos_seed,
        )
        with use_injector(FaultInjector(plan)):
            with CampaignOrchestrator(spec, workdir=workdir) as again:
                outcome = again.resume()
        assert outcome.executed_sim_tasks == 0
        assert again.meter.cells == 0
        assert again.meter.runs == 0

    def test_truncated_tail_is_dropped(self, clean_run, tmp_path):
        """A kill mid-append leaves a partial line; resume drops it."""
        workdir = str(tmp_path / "wd")
        spec = clean_run["spec"]
        with CampaignOrchestrator(spec, workdir=workdir) as first:
            first.run()
        path = os.path.join(workdir, "journal.jsonl")
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-40])  # tear the last record mid-line
        with CampaignOrchestrator(spec, workdir=workdir) as again:
            outcome = again.resume()
        assert journal_bytes(workdir) == clean_run["journal"]
        assert outcome.payload() == clean_run["payload"]


class TestGraphFaults:
    def test_task_faults_heal_inside_the_round(
        self, clean_run, chaos_seed, tmp_path
    ):
        """An injected simulate-task failure retries and the campaign
        never even notices — same journal, same model."""
        workdir = str(tmp_path / "wd")
        spec = clean_run["spec"]
        plan = plan_of(
            [
                FaultSpec(
                    site="runtime.task", kind="raise",
                    target="round-1:probe-1",
                ),
                FaultSpec(
                    site="runtime.task", kind="raise",
                    target="round-2:confirm-2",
                ),
            ],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)
        registry = MetricsRegistry()
        with use_metrics(registry), use_injector(injector):
            with CampaignOrchestrator(
                spec, workdir=workdir
            ) as orchestrator:
                outcome = orchestrator.run()
        summary = injector.summary()
        assert summary["injected"] == 2
        assert summary["recovered"] == 2
        assert registry.snapshot()["faults.recovered"]["value"] == 2
        assert journal_bytes(workdir) == clean_run["journal"]
        assert outcome.payload() == clean_run["payload"]

    def test_cache_read_corruption_heals(
        self, clean_run, chaos_seed, tmp_path
    ):
        """A rotten cache entry on resume is quarantined and the task
        recomputes; the campaign output does not change."""
        workdir = str(tmp_path / "wd")
        spec = clean_run["spec"]
        plan = plan_of(
            [FaultSpec(
                site="campaign.round", kind="raise", target="*/round-2",
            )],
            seed=chaos_seed,
        )
        with use_injector(FaultInjector(plan)):
            with pytest.raises(FaultInjectionError):
                with CampaignOrchestrator(
                    spec, workdir=workdir
                ) as orchestrator:
                    orchestrator.run()
        resume_plan = plan_of(
            [FaultSpec(site="cache.read", kind="corrupt", times=2)],
            seed=chaos_seed,
        )
        injector = FaultInjector(resume_plan)
        with use_injector(injector):
            with CampaignOrchestrator(spec, workdir=workdir) as again:
                outcome = again.resume()
        assert journal_bytes(workdir) == clean_run["journal"]
        assert outcome.payload() == clean_run["payload"]
        assert injector.summary()["recovered"] == (
            injector.summary()["injected"]
        )


class TestReplayEconomy:
    def test_finished_campaign_replays_without_simulating(
        self, clean_run, tmp_path
    ):
        workdir = str(tmp_path / "wd")
        spec = clean_run["spec"]
        with CampaignOrchestrator(spec, workdir=workdir) as first:
            first.run()
        with CampaignOrchestrator(spec, workdir=workdir) as again:
            outcome = again.resume()
        assert outcome.replayed_rounds == len(outcome.rounds)
        assert outcome.executed_sim_tasks == 0
        assert outcome.cached_sim_tasks == 0
        assert again.meter.cells == 0
        assert again.meter.runs == 0
        assert outcome.payload() == clean_run["payload"]
