"""Property-based tests for the extension modules: incremental SVD,
multiway stitching, LHS sampling, and blocked storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.multiway import MWPartition, multiway_join_dense
from repro.sampling import LatinHypercubeSampler
from repro.storage import BlockedLayout, assemble_from_blocks, split_into_blocks
from repro.tensor import SparseTensor, random_sparse
from repro.tensor.incremental_svd import append_cols, append_rows, exact_svd


def matrices(max_dim=10):
    return st.tuples(
        st.integers(2, max_dim), st.integers(2, max_dim)
    ).flatmap(
        lambda shape: hnp.arrays(
            np.float64, shape, elements=st.floats(-5, 5, allow_nan=False)
        )
    )


class TestIncrementalSvdProperties:
    @given(matrix=matrices(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_row_append_exact_at_full_rank(self, matrix, data):
        n_new = data.draw(st.integers(1, 3))
        rows = data.draw(
            hnp.arrays(
                np.float64,
                (n_new, matrix.shape[1]),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        full_rank = min(matrix.shape)
        u, s, vt = exact_svd(matrix, full_rank)
        target_rank = min(matrix.shape[0] + n_new, matrix.shape[1])
        u2, s2, vt2 = append_rows(u, s, vt, rows, rank=target_rank)
        full = np.vstack([matrix, rows])
        assert np.allclose((u2 * s2) @ vt2, full, atol=1e-6)

    @given(matrix=matrices(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_col_append_singular_values_match_batch(self, matrix, data):
        n_new = data.draw(st.integers(1, 3))
        cols = data.draw(
            hnp.arrays(
                np.float64,
                (matrix.shape[0], n_new),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        full_rank = min(matrix.shape)
        u, s, vt = exact_svd(matrix, full_rank)
        _u2, s2, _vt2 = append_cols(u, s, vt, cols, rank=full_rank)
        _ue, se, _vte = exact_svd(np.hstack([matrix, cols]), full_rank)
        assert np.allclose(np.sort(s2), np.sort(se), atol=1e-6)

    @given(matrix=matrices())
    @settings(max_examples=20, deadline=None)
    def test_updated_factors_orthonormal(self, matrix):
        rank = min(2, min(matrix.shape))
        u, s, vt = exact_svd(matrix, rank)
        rows = np.ones((1, matrix.shape[1]))
        u2, _s2, vt2 = append_rows(u, s, vt, rows, rank=rank)
        assert np.allclose(u2.T @ u2, np.eye(u2.shape[1]), atol=1e-7)
        assert np.allclose(vt2 @ vt2.T, np.eye(vt2.shape[0]), atol=1e-7)


class TestMultiwayProperties:
    @given(seed=st.integers(0, 500), m=st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_join_is_mean_of_broadcast_subs(self, seed, m):
        rng = np.random.default_rng(seed)
        shape = (3,) * (m + 1)
        groups = tuple((i,) for i in range(m))
        partition = MWPartition(shape, (m,), groups)
        subs = [
            rng.standard_normal(partition.sub_shape(i)) for i in range(m)
        ]
        joined = multiway_join_dense(subs, partition)
        # check a handful of random cells against the definition
        for _check in range(5):
            cell = tuple(rng.integers(0, 3, size=m + 1))
            pivot = cell[0]
            expected = np.mean(
                [subs[i][pivot, cell[1 + i]] for i in range(m)]
            )
            assert joined[cell] == pytest.approx(expected)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_join_norm_bounded_by_sub_norms(self, seed):
        rng = np.random.default_rng(seed)
        partition = MWPartition((3, 3, 3, 3, 3), (4,), ((0, 1), (2, 3)))
        subs = [
            rng.standard_normal(partition.sub_shape(i)) for i in range(2)
        ]
        joined = multiway_join_dense(subs, partition)
        assert np.abs(joined).max() <= max(
            np.abs(s).max() for s in subs
        ) + 1e-12


class TestLhsProperties:
    @given(budget=st.integers(1, 100), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_budget_and_uniqueness(self, budget, seed):
        shape = (5, 4, 6)
        budget = min(budget, int(np.prod(shape)))
        sample = LatinHypercubeSampler(seed=seed).sample(shape, budget)
        assert sample.n_cells == budget
        assert np.unique(sample.coords, axis=0).shape[0] == budget


class TestStorageProperties:
    @given(
        seed=st.integers(0, 1000),
        density=st.floats(0.05, 0.6),
        block=st.tuples(
            st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_split_assemble_roundtrip(self, seed, density, block):
        tensor = random_sparse((7, 6, 5), density, seed=seed)
        layout = BlockedLayout(tensor.shape, block)
        blocks = split_into_blocks(tensor, layout)
        assert assemble_from_blocks(layout, blocks) == tensor

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_block_nnz_partition(self, seed):
        tensor = random_sparse((8, 8), 0.3, seed=seed)
        layout = BlockedLayout((8, 8), (3, 3))
        blocks = split_into_blocks(tensor, layout)
        assert sum(b.nnz for b in blocks.values()) == tensor.nnz


class TestSparseDuplicateProperties:
    @given(
        seed=st.integers(0, 1000),
        n_cells=st.integers(1, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_duplicate_averaging_idempotent(self, seed, n_cells):
        rng = np.random.default_rng(seed)
        coords = rng.integers(0, 3, size=(n_cells, 2))
        values = rng.standard_normal(n_cells)
        once = SparseTensor((3, 3), coords, values)
        twice = SparseTensor((3, 3), once.coords, once.values)
        assert once == twice
