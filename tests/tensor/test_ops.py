"""Kronecker/Khatri-Rao/outer products and norm helpers."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import (
    frobenius_norm,
    inner,
    khatri_rao,
    kron,
    outer,
    relative_error,
)


class TestKron:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((4, 5))
        assert np.allclose(kron([a, b]), np.kron(a, b))

    def test_three_way(self, rng):
        a, b, c = (rng.standard_normal((2, 2)) for _ in range(3))
        assert np.allclose(kron([a, b, c]), np.kron(np.kron(a, b), c))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            kron([])


class TestKhatriRao:
    def test_columns_are_krons(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((5, 4))
        result = khatri_rao([a, b])
        assert result.shape == (15, 4)
        for col in range(4):
            assert np.allclose(result[:, col], np.kron(a[:, col], b[:, col]))

    def test_last_operand_varies_fastest(self, rng):
        a = rng.standard_normal((2, 1))
        b = rng.standard_normal((3, 1))
        result = khatri_rao([a, b])
        assert np.allclose(result[:3, 0], a[0, 0] * b[:, 0])

    def test_rejects_column_mismatch(self, rng):
        with pytest.raises(ShapeError):
            khatri_rao([rng.standard_normal((2, 3)), rng.standard_normal((2, 4))])

    def test_rejects_vectors(self):
        with pytest.raises(ShapeError):
            khatri_rao([np.ones(3), np.ones(3)])


class TestOuter:
    def test_rank_one(self, rng):
        u, v, w = rng.standard_normal(3), rng.standard_normal(4), rng.standard_normal(2)
        tensor = outer([u, v, w])
        assert tensor.shape == (3, 4, 2)
        assert tensor[1, 2, 1] == pytest.approx(u[1] * v[2] * w[1])

    def test_single_vector(self):
        assert np.allclose(outer([np.array([1.0, 2.0])]), [1.0, 2.0])


class TestNorms:
    def test_frobenius(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        assert frobenius_norm(tensor) == pytest.approx(
            np.sqrt((tensor**2).sum())
        )

    def test_inner_self_is_norm_squared(self, rng):
        tensor = rng.standard_normal((3, 4))
        assert inner(tensor, tensor) == pytest.approx(
            frobenius_norm(tensor) ** 2
        )

    def test_inner_rejects_mismatch(self, rng):
        with pytest.raises(ShapeError):
            inner(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_relative_error_zero_for_equal(self, rng):
        tensor = rng.standard_normal((3, 3))
        assert relative_error(tensor, tensor) == 0.0

    def test_relative_error_scale(self, rng):
        tensor = rng.standard_normal((3, 3))
        assert relative_error(np.zeros_like(tensor), tensor) == pytest.approx(1.0)

    def test_relative_error_zero_reference(self):
        assert relative_error(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0
        assert relative_error(np.ones((2, 2)), np.zeros((2, 2))) == np.inf
