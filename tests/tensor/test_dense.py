"""Dense-tensor helpers."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import (
    SparseTensor,
    as_tensor,
    mask_like,
    mode_means,
    normalize,
    pad_to_shape,
)


class TestAsTensor:
    def test_coerces_dtype(self):
        tensor = as_tensor([[1, 2], [3, 4]])
        assert tensor.dtype == np.float64

    def test_ndim_check(self):
        with pytest.raises(ShapeError):
            as_tensor(np.zeros((2, 2)), ndim=3)


class TestModeMeans:
    def test_values(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        means = mode_means(tensor, 1)
        assert means.shape == (4,)
        assert means[2] == pytest.approx(tensor[:, 2, :].mean())


class TestNormalize:
    def test_unit_norm(self, rng):
        tensor = rng.standard_normal((4, 4))
        assert np.linalg.norm(normalize(tensor)) == pytest.approx(1.0)

    def test_zero_passthrough(self):
        zeros = np.zeros((2, 2))
        assert np.array_equal(normalize(zeros), zeros)


class TestMaskLike:
    def test_samples_values(self, rng):
        dense = rng.standard_normal((4, 5))
        pattern = SparseTensor((4, 5), [[0, 0], [3, 4]], [9.0, 9.0])
        masked = mask_like(dense, pattern)
        assert masked.get((0, 0)) == pytest.approx(dense[0, 0])
        assert masked.get((3, 4)) == pytest.approx(dense[3, 4])
        assert masked.nnz == 2

    def test_empty_pattern(self, rng):
        dense = rng.standard_normal((3, 3))
        assert mask_like(dense, SparseTensor((3, 3))).nnz == 0

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            mask_like(rng.standard_normal((3, 3)), SparseTensor((2, 2)))


class TestPadToShape:
    def test_pads_with_zeros(self, rng):
        tensor = rng.standard_normal((2, 3))
        padded = pad_to_shape(tensor, (4, 3))
        assert padded.shape == (4, 3)
        assert np.allclose(padded[:2], tensor)
        assert np.allclose(padded[2:], 0)

    def test_rejects_shrink(self, rng):
        with pytest.raises(ShapeError):
            pad_to_shape(rng.standard_normal((3, 3)), (2, 3))

    def test_rejects_order_change(self, rng):
        with pytest.raises(ShapeError):
            pad_to_shape(rng.standard_normal((3, 3)), (3, 3, 1))
