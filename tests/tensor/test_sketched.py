"""Sketched (MACH) kernel paths: byte-identity at keep_probability=1.0,
the empty-sketch SketchError regression, and the exact-fallback meter.

``method="sketched"`` is opt-in — the wall here guarantees that opting
in at p=1.0 costs *nothing*: core and factors are byte-for-byte the
exact result, for all three Tucker kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import KernelError, SketchError
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.tensor import (
    KEEP_PROBABILITY_SCHEDULE,
    SparseTensor,
    hooi,
    hosvd,
    sketch_curve,
    sparsify,
    st_hosvd,
    suggested_keep_probability,
)


def _random_tensor(ndim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dims = rng.integers(2, 6, size=ndim)
    return rng.standard_normal(tuple(dims))


def _assert_byte_identical(a, b):
    assert np.array_equal(a.core, b.core)
    assert len(a.factors) == len(b.factors)
    for u_a, u_b in zip(a.factors, b.factors):
        assert np.array_equal(u_a, u_b)


class TestKeepProbabilityOne:
    """p >= 1.0 must short-circuit: no sketch round-trip, so the result
    is byte-identical to the exact method."""

    @given(ndim=st.integers(3, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_hosvd_identity(self, ndim, seed):
        dense = _random_tensor(ndim, seed)
        ranks = tuple(min(2, s) for s in dense.shape)
        _assert_byte_identical(
            hosvd(dense, ranks),
            hosvd(dense, ranks, method="sketched", keep_probability=1.0),
        )

    @given(ndim=st.integers(3, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_st_hosvd_identity(self, ndim, seed):
        dense = _random_tensor(ndim, seed)
        ranks = tuple(min(2, s) for s in dense.shape)
        _assert_byte_identical(
            st_hosvd(dense, ranks),
            st_hosvd(dense, ranks, method="sketched", keep_probability=1.0),
        )

    @given(ndim=st.integers(3, 4), seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_hooi_identity(self, ndim, seed):
        dense = _random_tensor(ndim, seed)
        ranks = tuple(min(2, s) for s in dense.shape)
        _assert_byte_identical(
            hooi(dense, ranks, n_iter=3),
            hooi(
                dense, ranks, n_iter=3,
                method="sketched", keep_probability=1.0,
            ),
        )

    def test_sparse_input_identity(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((5, 6, 7))
        dense[rng.random(dense.shape) < 0.5] = 0.0
        sparse = SparseTensor.from_dense(dense)
        _assert_byte_identical(
            hosvd(sparse, (2, 2, 2)),
            hosvd(sparse, (2, 2, 2), method="sketched", keep_probability=1.0),
        )


class TestSketchError:
    def test_empty_sketch_raises(self):
        """Regression: a sketch that drops every entry of a non-empty
        tensor is a typed SketchError, not a silent zero tensor."""
        rng = np.random.default_rng(1)
        tensor = rng.standard_normal((3, 3, 3))
        with pytest.raises(SketchError, match="dropped"):
            sparsify(tensor, 1e-12, seed=0)

    def test_empty_input_does_not_raise(self):
        empty = SparseTensor((3, 3, 3))
        sketch = sparsify(empty, 1e-12, seed=0)
        assert sketch.nnz == 0

    def test_sketched_method_falls_back_to_exact(self):
        """A degenerate keep probability inside method='sketched' heals
        by running exact, metered as tensor.sketch_fallbacks."""
        rng = np.random.default_rng(2)
        dense = rng.standard_normal((4, 4, 4))
        registry = MetricsRegistry()
        with use_metrics(registry):
            sketched = hosvd(
                dense, (2, 2, 2), method="sketched",
                keep_probability=1e-12, seed=0,
            )
            assert registry.counter("tensor.sketch_fallbacks").value == 1
        _assert_byte_identical(hosvd(dense, (2, 2, 2)), sketched)

    def test_sketches_metered(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((6, 6, 6))
        registry = MetricsRegistry()
        with use_metrics(registry):
            sparsify(dense, 0.5, seed=0)
            assert registry.counter("tensor.sketches").value == 1


class TestMethodValidation:
    def test_unknown_method_raises(self):
        dense = np.ones((2, 2, 2))
        for fn in (hosvd, st_hosvd):
            with pytest.raises(KernelError, match="method"):
                fn(dense, (1, 1, 1), method="turbo")
        with pytest.raises(KernelError, match="method"):
            hooi(dense, (1, 1, 1), method="turbo")


class TestSketchCurve:
    def test_schedule_shape(self):
        assert KEEP_PROBABILITY_SCHEDULE[0] == 1.0
        assert all(
            a > b for a, b in zip(
                KEEP_PROBABILITY_SCHEDULE, KEEP_PROBABILITY_SCHEDULE[1:]
            )
        )

    def test_curve_rows(self):
        rng = np.random.default_rng(4)
        dense = rng.standard_normal((6, 6, 6))
        from repro.tensor import hosvd as exact_hosvd

        reference = exact_hosvd(dense, (2, 2, 2)).reconstruct()
        rows = sketch_curve(
            dense, (2, 2, 2), probabilities=(1.0, 0.5), seed=0,
            reference=reference,
        )
        assert len(rows) == 2
        for row in rows:
            assert set(row) == {
                "keep_probability", "seconds", "relative_error",
            }
        # against the exact reconstruction the p=1.0 anchor is error-free
        assert rows[0]["relative_error"] == 0.0
        assert rows[1]["relative_error"] > 0.0

    def test_suggested_probability_in_schedule_range(self):
        rng = np.random.default_rng(5)
        dense = rng.standard_normal((20, 4, 4))
        p = suggested_keep_probability(dense)
        assert KEEP_PROBABILITY_SCHEDULE[-1] <= p <= 1.0
