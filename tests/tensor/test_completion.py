"""EM-Tucker completion."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor import (
    SparseTensor,
    completion_accuracy,
    em_tucker,
    random_low_rank,
)


def observed_subset(truth, fraction, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random(truth.shape) < fraction
    coords = np.argwhere(mask)
    return SparseTensor(truth.shape, coords, truth[mask])


class TestEmTucker:
    def test_recovers_low_rank_from_half_observed(self):
        truth = random_low_rank((8, 8, 8), (2, 2, 2), seed=1)
        observed = observed_subset(truth, 0.5, seed=2)
        result = em_tucker(observed, (2, 2, 2), n_iter=100)
        assert completion_accuracy(result, truth) > 0.95

    def test_observed_cells_pinned(self):
        truth = random_low_rank((6, 6, 6), (2, 2, 2), seed=3)
        observed = observed_subset(truth, 0.3, seed=4)
        result = em_tucker(observed, (2, 2, 2), n_iter=5)
        for index, value in observed.items():
            assert result.completed[index] == pytest.approx(value)

    def test_more_iterations_never_hurt_much(self):
        truth = random_low_rank((6, 6, 6), (2, 2, 2), seed=5)
        observed = observed_subset(truth, 0.4, seed=6)
        short = em_tucker(observed, (2, 2, 2), n_iter=2)
        long = em_tucker(observed, (2, 2, 2), n_iter=40)
        assert completion_accuracy(long, truth) >= (
            completion_accuracy(short, truth) - 0.05
        )

    def test_convergence_flag(self):
        truth = random_low_rank((6, 6, 6), (1, 1, 1), seed=7)
        observed = observed_subset(truth, 0.6, seed=8)
        result = em_tucker(observed, (1, 1, 1), n_iter=200, tol=1e-4)
        assert result.converged
        assert result.n_iterations < 200

    def test_rejects_empty_observations(self):
        with pytest.raises(RankError):
            em_tucker(SparseTensor((4, 4)), (2, 2))

    def test_rejects_dense_input(self):
        with pytest.raises(ShapeError):
            em_tucker(np.zeros((4, 4)), (2, 2))

    def test_accuracy_shape_check(self):
        truth = random_low_rank((5, 5, 5), (1, 1, 1), seed=9)
        observed = observed_subset(truth, 0.5, seed=9)
        result = em_tucker(observed, (1, 1, 1), n_iter=3)
        with pytest.raises(ShapeError):
            completion_accuracy(result, truth[:-1])
