"""Energy-threshold rank selection."""

import numpy as np
import pytest

from repro.exceptions import RankError
from repro.tensor import (
    SparseTensor,
    describe_rank_profile,
    energy_rank_of_matrix,
    energy_threshold_ranks,
    random_low_rank,
)


class TestEnergyRankOfMatrix:
    def test_exact_low_rank(self, rng):
        u = rng.standard_normal((10, 2))
        v = rng.standard_normal((8, 2))
        matrix = u @ v.T
        assert energy_rank_of_matrix(matrix, 0.999) == 2

    def test_threshold_monotone(self, rng):
        matrix = rng.standard_normal((12, 12))
        r_low = energy_rank_of_matrix(matrix, 0.5)
        r_high = energy_rank_of_matrix(matrix, 0.99)
        assert r_low <= r_high

    def test_max_rank_cap(self, rng):
        matrix = rng.standard_normal((12, 12))
        assert energy_rank_of_matrix(matrix, 0.999, max_rank=3) <= 3

    def test_zero_matrix(self):
        assert energy_rank_of_matrix(np.zeros((4, 4)), 0.9) == 1

    def test_rejects_bad_threshold(self, rng):
        with pytest.raises(RankError):
            energy_rank_of_matrix(rng.standard_normal((3, 3)), 0.0)
        with pytest.raises(RankError):
            energy_rank_of_matrix(rng.standard_normal((3, 3)), 1.5)


class TestEnergyThresholdRanks:
    def test_recovers_multilinear_rank(self):
        tensor = random_low_rank((8, 8, 8), (2, 3, 2), seed=0)
        assert energy_threshold_ranks(tensor, 0.9999) == (2, 3, 2)

    def test_sparse_input(self):
        dense = random_low_rank((8, 8, 8), (2, 2, 2), seed=1)
        sparse = SparseTensor.from_dense(dense, keep_zeros=True)
        assert energy_threshold_ranks(
            sparse, 0.9999
        ) == energy_threshold_ranks(dense, 0.9999)

    def test_lower_threshold_never_larger(self, rng):
        tensor = rng.standard_normal((6, 6, 6))
        low = energy_threshold_ranks(tensor, 0.5)
        high = energy_threshold_ranks(tensor, 0.99)
        assert all(l <= h for l, h in zip(low, high))

    def test_profile(self, rng):
        tensor = rng.standard_normal((5, 5, 5))
        profile = describe_rank_profile(tensor, thresholds=(0.5, 0.9))
        assert set(profile) == {0.5, 0.9}
        assert len(profile[0.5]) == 3
