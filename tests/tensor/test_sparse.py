"""SparseTensor: construction, conversions, and null-vs-zero semantics."""

import numpy as np
import pytest

from repro.exceptions import ModeError, ShapeError
from repro.tensor import SparseTensor, unfold


def small_tensor():
    return SparseTensor(
        (3, 4, 2),
        coords=[[0, 0, 0], [2, 3, 1], [1, 2, 0]],
        values=[1.0, -2.5, 4.0],
    )


class TestConstruction:
    def test_basic(self):
        tensor = small_tensor()
        assert tensor.shape == (3, 4, 2)
        assert tensor.nnz == 3
        assert tensor.size == 24
        assert tensor.density == pytest.approx(3 / 24)

    def test_empty(self):
        tensor = SparseTensor((2, 2))
        assert tensor.nnz == 0
        assert np.array_equal(tensor.to_dense(), np.zeros((2, 2)))

    def test_duplicates_averaged(self):
        tensor = SparseTensor(
            (2, 2), coords=[[0, 1], [0, 1], [1, 0]], values=[2.0, 4.0, 7.0]
        )
        assert tensor.nnz == 2
        assert tensor.get((0, 1)) == pytest.approx(3.0)
        assert tensor.get((1, 0)) == pytest.approx(7.0)

    def test_explicit_zero_is_stored(self):
        tensor = SparseTensor((2, 2), coords=[[0, 0]], values=[0.0])
        assert tensor.nnz == 1

    def test_rejects_out_of_bounds(self):
        with pytest.raises(ShapeError):
            SparseTensor((2, 2), coords=[[0, 2]], values=[1.0])
        with pytest.raises(ShapeError):
            SparseTensor((2, 2), coords=[[-1, 0]], values=[1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            SparseTensor((2, 2), coords=[[0, 0]], values=[1.0, 2.0])

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            SparseTensor((0, 2))

    def test_from_dict(self):
        tensor = SparseTensor.from_dict((2, 3), {(0, 1): 5.0, (1, 2): -1.0})
        assert tensor.get((0, 1)) == 5.0
        assert tensor.get((1, 2)) == -1.0
        assert SparseTensor.from_dict((2, 3), {}).nnz == 0

    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((3, 4, 2))
        dense[dense < 0] = 0.0
        tensor = SparseTensor.from_dense(dense)
        assert np.allclose(tensor.to_dense(), dense)

    def test_from_dense_keep_zeros(self):
        dense = np.zeros((2, 3))
        dense[0, 1] = 5.0
        tensor = SparseTensor.from_dense(dense, keep_zeros=True)
        assert tensor.nnz == 6
        assert np.allclose(tensor.to_dense(), dense)


class TestAccess:
    def test_get_default(self):
        tensor = small_tensor()
        assert tensor.get((0, 1, 1)) == 0.0
        assert tensor.get((0, 1, 1), default=-1.0) == -1.0

    def test_get_rejects_bad_length(self):
        with pytest.raises(ShapeError):
            small_tensor().get((0, 1))

    def test_items(self):
        items = dict(small_tensor().items())
        assert items[(2, 3, 1)] == pytest.approx(-2.5)
        assert len(items) == 3

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(small_tensor())

    def test_equality(self):
        assert small_tensor() == small_tensor()
        other = SparseTensor((3, 4, 2), [[0, 0, 0]], [1.0])
        assert small_tensor() != other


class TestUnfoldCsr:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_unfold(self, mode, rng):
        dense = rng.standard_normal((3, 4, 5))
        dense[np.abs(dense) < 0.8] = 0.0
        tensor = SparseTensor.from_dense(dense)
        assert np.allclose(
            tensor.unfold_csr(mode).toarray(), unfold(dense, mode)
        )

    def test_frobenius_norm(self):
        tensor = small_tensor()
        assert tensor.frobenius_norm() == pytest.approx(
            np.linalg.norm(tensor.to_dense())
        )


class TestTransforms:
    def test_transpose(self, rng):
        dense = rng.standard_normal((2, 3, 4))
        tensor = SparseTensor.from_dense(dense)
        transposed = tensor.transpose((2, 0, 1))
        assert transposed.shape == (4, 2, 3)
        assert np.allclose(transposed.to_dense(), np.transpose(dense, (2, 0, 1)))

    def test_transpose_rejects_bad_perm(self):
        with pytest.raises(ModeError):
            small_tensor().transpose((0, 0, 1))

    def test_scale(self):
        doubled = small_tensor().scale(2.0)
        assert doubled.get((0, 0, 0)) == pytest.approx(2.0)

    def test_slice_mode(self, rng):
        dense = rng.standard_normal((3, 4, 2))
        tensor = SparseTensor.from_dense(dense)
        sliced = tensor.slice_mode(1, 2)
        assert sliced.shape == (3, 2)
        assert np.allclose(sliced.to_dense(), dense[:, 2, :])

    def test_slice_mode_rejects_bad_index(self):
        with pytest.raises(ModeError):
            small_tensor().slice_mode(1, 9)

    def test_slice_only_mode_rejected(self):
        tensor = SparseTensor((4,), [[1]], [2.0])
        with pytest.raises(ShapeError):
            tensor.slice_mode(0, 1)
