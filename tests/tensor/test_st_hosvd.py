"""Sequentially truncated HOSVD."""

import numpy as np
import pytest

from repro.exceptions import RankError
from repro.tensor import (
    SparseTensor,
    hosvd,
    random_low_rank,
    st_hosvd,
)


class TestStHosvd:
    def test_exact_on_low_rank(self):
        tensor = random_low_rank((7, 8, 6), (2, 3, 2), seed=0)
        assert st_hosvd(tensor, (2, 3, 2)).relative_error(tensor) < 1e-10

    def test_same_error_class_as_hosvd(self, rng):
        tensor = rng.standard_normal((8, 8, 8))
        ranks = (3, 3, 3)
        st_error = st_hosvd(tensor, ranks).relative_error(tensor)
        plain_error = hosvd(tensor, ranks).relative_error(tensor)
        # Both are quasi-optimal; neither should be wildly worse.
        assert st_error < plain_error * 1.2 + 1e-9

    def test_orthonormal_factors(self, rng):
        tensor = rng.standard_normal((6, 7, 5))
        result = st_hosvd(tensor, (2, 3, 2))
        for factor in result.factors:
            assert np.allclose(
                factor.T @ factor, np.eye(factor.shape[1]), atol=1e-10
            )

    def test_core_shape(self, rng):
        tensor = rng.standard_normal((6, 7, 5))
        result = st_hosvd(tensor, (2, 3, 4))
        assert result.core.shape == (2, 3, 4)

    def test_sparse_input(self):
        dense = random_low_rank((6, 6, 6), (2, 2, 2), seed=1)
        sparse = SparseTensor.from_dense(dense, keep_zeros=True)
        a = st_hosvd(sparse, (2, 2, 2))
        b = st_hosvd(dense, (2, 2, 2))
        assert np.allclose(a.reconstruct(), b.reconstruct())

    def test_rejects_bad_ranks(self, rng):
        with pytest.raises(RankError):
            st_hosvd(rng.standard_normal((4, 4)), (5, 2))

    def test_first_mode_matches_hosvd_factor(self, rng):
        """The first factor sees the unprojected tensor, so it must
        equal plain HOSVD's first factor exactly."""
        tensor = rng.standard_normal((6, 7, 5))
        a = st_hosvd(tensor, (2, 3, 2))
        b = hosvd(tensor, (2, 3, 2))
        assert np.allclose(a.factors[0], b.factors[0])
