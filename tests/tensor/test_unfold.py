"""Unfold/fold: the matricization convention everything else rests on."""

import numpy as np
import pytest

from repro.exceptions import ModeError, ShapeError
from repro.tensor import fold, unfold, unfold_row_index


class TestUnfold:
    def test_shape(self):
        tensor = np.arange(24.0).reshape(2, 3, 4)
        assert unfold(tensor, 0).shape == (2, 12)
        assert unfold(tensor, 1).shape == (3, 8)
        assert unfold(tensor, 2).shape == (4, 6)

    def test_mode0_columns_are_fibers(self):
        tensor = np.arange(24.0).reshape(2, 3, 4)
        matrix = unfold(tensor, 0)
        # Column 0 must be the (.,0,0) fiber.
        assert np.array_equal(matrix[:, 0], tensor[:, 0, 0])

    def test_fortran_column_order(self):
        # The first non-unfolded mode varies fastest along columns.
        tensor = np.arange(24.0).reshape(2, 3, 4)
        matrix = unfold(tensor, 0)
        assert np.array_equal(matrix[:, 1], tensor[:, 1, 0])
        assert np.array_equal(matrix[:, 3], tensor[:, 0, 1])

    def test_negative_mode(self):
        tensor = np.arange(24.0).reshape(2, 3, 4)
        assert np.array_equal(unfold(tensor, -1), unfold(tensor, 2))

    def test_matrix_unfold_is_identity_or_transpose(self):
        matrix = np.arange(6.0).reshape(2, 3)
        assert np.array_equal(unfold(matrix, 0), matrix)
        assert np.array_equal(unfold(matrix, 1), matrix.T)

    def test_rejects_bad_mode(self):
        with pytest.raises(ModeError):
            unfold(np.zeros((2, 2)), 5)
        with pytest.raises(ModeError):
            unfold(np.zeros((2, 2)), 1.5)

    def test_rejects_scalar(self):
        with pytest.raises(ShapeError):
            unfold(np.array(3.0), 0)


class TestFold:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_roundtrip(self, mode, rng):
        tensor = rng.standard_normal((3, 4, 2, 5))
        matrix = unfold(tensor, mode)
        assert np.allclose(fold(matrix, mode, tensor.shape), tensor)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ShapeError):
            fold(np.zeros((3, 5)), 0, (3, 4))

    def test_rejects_non_matrix(self):
        with pytest.raises(ShapeError):
            fold(np.zeros((3, 4, 2)), 0, (3, 8))


class TestUnfoldRowIndex:
    def test_matches_dense_unfold(self, rng):
        shape = (3, 4, 5)
        tensor = rng.standard_normal(shape)
        for mode in range(3):
            matrix = unfold(tensor, mode)
            for multi_index in [(0, 0, 0), (2, 3, 4), (1, 2, 3)]:
                row, col = unfold_row_index(multi_index, shape, mode)
                assert matrix[row, col] == tensor[multi_index]

    def test_rejects_bad_index_length(self):
        with pytest.raises(ShapeError):
            unfold_row_index((0, 0), (2, 3, 4), 0)
