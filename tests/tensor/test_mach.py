"""MACH randomized Tucker via entry subsampling."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor import (
    SparseTensor,
    mach_error_vs_exact,
    mach_tucker,
    random_low_rank,
    sparsify,
)


class TestSparsify:
    def test_unbiased_in_expectation(self):
        dense = np.full((10, 10, 10), 2.0)
        sketch = sparsify(dense, 0.5, seed=0)
        # scaled survivors: mean of the sketch cells approximates the
        # original total
        assert sketch.values.sum() == pytest.approx(
            dense.sum(), rel=0.15
        )

    def test_keep_probability_one_is_identity(self):
        dense = np.arange(8.0).reshape(2, 2, 2) + 1
        sketch = sparsify(dense, 1.0, seed=0)
        assert np.allclose(sketch.to_dense(), dense)

    def test_sparse_input(self):
        from repro.tensor import random_sparse

        tensor = random_sparse((10, 10), 0.5, seed=1)
        sketch = sparsify(tensor, 0.5, seed=2)
        assert sketch.nnz <= tensor.nnz
        # surviving values are scaled by 1/p
        for index, value in sketch.items():
            assert value == pytest.approx(tensor.get(index) * 2.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ShapeError):
            sparsify(np.zeros((2, 2)), 0.0)
        with pytest.raises(ShapeError):
            sparsify(np.zeros((2, 2)), 1.5)


class TestMachTucker:
    def test_full_probability_equals_hosvd(self):
        from repro.tensor import hosvd

        truth = random_low_rank((8, 8, 8), (2, 2, 2), seed=3)
        exact = hosvd(truth, (2, 2, 2))
        sketched = mach_tucker(truth, (2, 2, 2), keep_probability=1.0, seed=0)
        assert np.allclose(
            exact.reconstruct(), sketched.reconstruct(), atol=1e-8
        )

    def test_error_decreases_with_probability(self):
        truth = random_low_rank((10, 10, 10), (2, 2, 2), seed=4)
        errors = [
            np.median(
                [
                    mach_error_vs_exact(truth, (2, 2, 2), p, seed=s)
                    for s in range(5)
                ]
            )
            for p in (0.2, 0.9)
        ]
        assert errors[1] < errors[0]

    def test_empty_sketch_rejected(self):
        tensor = SparseTensor((50, 50), [[0, 0]], [1.0])
        with pytest.raises(RankError):
            # keeping ~1e-9 of a single cell will drop it
            mach_tucker(tensor, (1, 1), keep_probability=1e-9, seed=1)
