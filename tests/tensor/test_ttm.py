"""n-mode products: definition checks and algebraic identities."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import fold, multi_ttm, ttm, ttv, unfold


class TestTtm:
    def test_shape(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        matrix = rng.standard_normal((7, 4))
        assert ttm(tensor, matrix, 1).shape == (3, 7, 5)

    def test_identity(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        assert np.allclose(ttm(tensor, np.eye(4), 1), tensor)

    def test_definition_via_unfold(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        matrix = rng.standard_normal((2, 4))
        product = ttm(tensor, matrix, 1)
        assert np.allclose(unfold(product, 1), matrix @ unfold(tensor, 1))

    def test_composition_same_mode(self, rng):
        # (X x_n A) x_n B == X x_n (B A)
        tensor = rng.standard_normal((3, 4, 5))
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((2, 6))
        assert np.allclose(
            ttm(ttm(tensor, a, 1), b, 1), ttm(tensor, b @ a, 1)
        )

    def test_commutes_across_modes(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((6, 5))
        assert np.allclose(
            ttm(ttm(tensor, a, 0), b, 2), ttm(ttm(tensor, b, 2), a, 0)
        )

    def test_rejects_mismatch(self, rng):
        with pytest.raises(ShapeError):
            ttm(rng.standard_normal((3, 4)), rng.standard_normal((2, 5)), 1)

    def test_rejects_vector_operand(self, rng):
        with pytest.raises(ShapeError):
            ttm(rng.standard_normal((3, 4)), np.ones(4), 1)


class TestMultiTtm:
    def test_all_modes(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        mats = [rng.standard_normal((2, s)) for s in tensor.shape]
        expected = tensor
        for mode, m in enumerate(mats):
            expected = ttm(expected, m, mode)
        assert np.allclose(multi_ttm(tensor, mats), expected)

    def test_none_skips(self, rng):
        tensor = rng.standard_normal((3, 4))
        m = rng.standard_normal((2, 4))
        result = multi_ttm(tensor, [None, m])
        assert np.allclose(result, ttm(tensor, m, 1))

    def test_transpose_flag(self, rng):
        tensor = rng.standard_normal((3, 4))
        m = rng.standard_normal((3, 2))
        assert np.allclose(
            multi_ttm(tensor, [m, None], transpose=True),
            ttm(tensor, m.T, 0),
        )

    def test_skip_modes(self, rng):
        tensor = rng.standard_normal((3, 4))
        mats = [rng.standard_normal((2, 3)), rng.standard_normal((2, 4))]
        result = multi_ttm(tensor, mats, skip=[0])
        assert np.allclose(result, ttm(tensor, mats[1], 1))

    def test_rejects_wrong_count(self, rng):
        with pytest.raises(ShapeError):
            multi_ttm(rng.standard_normal((3, 4)), [np.eye(3)])


class TestTtv:
    def test_drops_mode(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        vector = rng.standard_normal(4)
        result = ttv(tensor, vector, 1)
        assert result.shape == (3, 5)
        expected = fold(
            (vector[None, :] @ unfold(tensor, 1)), 0, (1, 3, 5)
        )[0]
        assert np.allclose(result, expected)

    def test_rejects_mismatch(self, rng):
        with pytest.raises(ShapeError):
            ttv(rng.standard_normal((3, 4)), np.ones(5), 1)
