"""Gram-matrix kernels: factor agreement with the dense SVD route and
the no-densification guard.

The property wall for tentpole (b): across 3-5-mode tensors the Gram
ST-HOSVD must match the dense ST-HOSVD factors to 1e-8 (up to sign),
and on sparse inputs the ``tensor.dense_unfolds`` counter must stay at
exactly zero — the proof that no dense unfolding was materialized.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RankError
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.tensor import (
    SparseTensor,
    gram_hosvd,
    gram_st_hosvd,
    hosvd,
    mode_gram,
    sparse_project,
    sparse_ttm,
    st_hosvd,
    ttm,
    unfold,
)
from repro.tensor.svd import gram_left_singular_vectors, gram_singular_pairs


def _random_tensor(ndim: int, seed: int) -> np.ndarray:
    """Standard-normal tensors: continuous entries keep the spectra
    well separated, so eigh/SVD subspace agreement is meaningful."""
    rng = np.random.default_rng(seed)
    dims = rng.integers(2, 6, size=ndim)
    return rng.standard_normal(tuple(dims))


def _columns_match(u1: np.ndarray, u2: np.ndarray, atol: float) -> bool:
    """Column-wise agreement up to sign."""
    assert u1.shape == u2.shape
    for col in range(u1.shape[1]):
        delta = min(
            np.abs(u1[:, col] - u2[:, col]).max(),
            np.abs(u1[:, col] + u2[:, col]).max(),
        )
        if delta > atol:
            return False
    return True


class TestModeGram:
    def test_matches_dense_product(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((4, 5, 6))
        for mode in range(3):
            matricized = unfold(dense, mode)
            assert np.allclose(
                mode_gram(dense, mode), matricized @ matricized.T
            )

    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((4, 5, 6))
        dense[dense < 0.5] = 0.0
        sparse = SparseTensor.from_dense(dense)
        for mode in range(3):
            assert np.allclose(
                mode_gram(sparse, mode), mode_gram(dense, mode), atol=1e-12
            )


class TestGramSingularVectors:
    def test_matches_svd_vectors(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((5, 40))
        from repro.tensor import truncated_svd

        u_svd, s, _vt = truncated_svd(matrix, 3)
        u_gram = gram_left_singular_vectors(matrix @ matrix.T, 3)
        assert _columns_match(u_svd, u_gram, 1e-8)

    def test_pairs_return_singular_values(self):
        rng = np.random.default_rng(3)
        matrix = rng.standard_normal((5, 40))
        from repro.tensor import truncated_svd

        _u, s_svd, _vt = truncated_svd(matrix, 4)
        u, s = gram_singular_pairs(matrix @ matrix.T, 4)
        assert u.shape == (5, 4)
        assert np.allclose(s, s_svd, atol=1e-8)

    def test_rank_validation(self):
        with pytest.raises(RankError):
            gram_left_singular_vectors(np.eye(3), 4)
        with pytest.raises(RankError):
            gram_singular_pairs(np.eye(3), 0)


class TestGramStHosvd:
    @given(ndim=st.integers(3, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_factors_match_dense_st_hosvd(self, ndim, seed):
        """The satellite pin: Gram ST-HOSVD == dense ST-HOSVD factors
        to 1e-8 (up to sign) across 3-5-mode tensors."""
        dense = _random_tensor(ndim, seed)
        ranks = tuple(min(2, s) for s in dense.shape)
        exact = st_hosvd(dense, ranks)
        gram = gram_st_hosvd(dense, ranks)
        for u_exact, u_gram in zip(exact.factors, gram.factors):
            assert _columns_match(u_exact, u_gram, 1e-8)
        assert np.allclose(
            exact.reconstruct(), gram.reconstruct(), atol=1e-8
        )

    @given(ndim=st.integers(3, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_sparse_matches_dense_input(self, ndim, seed):
        dense = _random_tensor(ndim, seed)
        dense[np.abs(dense) < 0.4] = 0.0
        sparse = SparseTensor.from_dense(dense)
        ranks = tuple(min(2, s) for s in dense.shape)
        from_sparse = gram_st_hosvd(sparse, ranks)
        from_dense = gram_st_hosvd(dense, ranks)
        assert np.allclose(
            from_sparse.reconstruct(), from_dense.reconstruct(), atol=1e-8
        )

    def test_sparse_never_densifies(self):
        """Acceptance guard: ``tensor.dense_unfolds`` pinned at 0
        through a full sparse Gram ST-HOSVD."""
        rng = np.random.default_rng(7)
        dense = rng.standard_normal((6, 7, 8))
        dense[np.abs(dense) < 0.8] = 0.0
        sparse = SparseTensor.from_dense(dense)
        registry = MetricsRegistry()
        with use_metrics(registry):
            gram_st_hosvd(sparse, (3, 3, 3))
            assert registry.counter("tensor.dense_unfolds").value == 0

    def test_gram_hosvd_sparse_never_densifies(self):
        rng = np.random.default_rng(8)
        dense = rng.standard_normal((6, 7, 8))
        dense[np.abs(dense) < 0.8] = 0.0
        sparse = SparseTensor.from_dense(dense)
        registry = MetricsRegistry()
        with use_metrics(registry):
            gram_hosvd(sparse, (3, 3, 3))
            assert registry.counter("tensor.dense_unfolds").value == 0

    def test_method_dispatch_routes_here(self):
        rng = np.random.default_rng(9)
        dense = rng.standard_normal((5, 6, 7))
        via_method = st_hosvd(dense, (2, 2, 2), method="gram")
        direct = gram_st_hosvd(dense, (2, 2, 2))
        assert np.array_equal(via_method.core, direct.core)
        via_hosvd = hosvd(dense, (2, 2, 2), method="gram")
        assert np.array_equal(via_hosvd.core, gram_hosvd(dense, (2, 2, 2)).core)


class TestSparseTtm:
    @given(seed=st.integers(0, 10_000), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_dense_ttm(self, seed, data):
        dense = _random_tensor(3, seed)
        dense[np.abs(dense) < 0.3] = 0.0
        sparse = SparseTensor.from_dense(dense)
        mode = data.draw(st.integers(0, 2))
        rows = data.draw(st.integers(1, 3))
        rng = np.random.default_rng(seed + 1)
        matrix = rng.standard_normal((rows, dense.shape[mode]))
        assert np.allclose(
            sparse_ttm(sparse, matrix, mode),
            ttm(dense, matrix, mode),
            atol=1e-12,
        )

    def test_sparse_project_matches_multi_ttm(self):
        from repro.tensor import multi_ttm

        rng = np.random.default_rng(11)
        dense = rng.standard_normal((5, 6, 7))
        dense[np.abs(dense) < 0.3] = 0.0
        sparse = SparseTensor.from_dense(dense)
        factors = [rng.standard_normal((s, 2)) for s in dense.shape]
        assert np.allclose(
            sparse_project(sparse, factors),
            multi_ttm(dense, factors, transpose=True),
            atol=1e-12,
        )
