"""Tucker decomposition: HOSVD (paper Algorithm 1), HOOI, container."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor import (
    SparseTensor,
    TuckerTensor,
    clip_ranks,
    hooi,
    hosvd,
    random_low_rank,
    validate_ranks,
)


class TestTuckerTensor:
    def test_reconstruct_shape(self, rng):
        core = rng.standard_normal((2, 3))
        factors = [rng.standard_normal((5, 2)), rng.standard_normal((6, 3))]
        tucker = TuckerTensor(core, factors)
        assert tucker.shape == (5, 6)
        assert tucker.rank == (2, 3)
        assert tucker.reconstruct().shape == (5, 6)

    def test_rejects_mismatched_factor(self, rng):
        with pytest.raises(ShapeError):
            TuckerTensor(
                rng.standard_normal((2, 3)),
                [rng.standard_normal((5, 2)), rng.standard_normal((6, 4))],
            )

    def test_rejects_wrong_factor_count(self, rng):
        with pytest.raises(ShapeError):
            TuckerTensor(rng.standard_normal((2, 3)), [np.eye(2)])

    def test_compression_ratio(self, rng):
        tucker = TuckerTensor(
            rng.standard_normal((2, 2)),
            [rng.standard_normal((10, 2)) for _ in range(2)],
        )
        assert tucker.compression_ratio() == pytest.approx((4 + 40) / 100)

    def test_accuracy_is_one_minus_relative_error(self, rng):
        tensor = random_low_rank((5, 6, 4), (2, 2, 2), seed=1)
        tucker = hosvd(tensor, (2, 2, 2))
        assert tucker.accuracy(tensor) == pytest.approx(
            1 - tucker.relative_error(tensor)
        )


class TestRankValidation:
    def test_validate_ok(self):
        assert validate_ranks((5, 6), (2, 3)) == (2, 3)

    def test_validate_rejects(self):
        with pytest.raises(RankError):
            validate_ranks((5, 6), (2,))
        with pytest.raises(RankError):
            validate_ranks((5, 6), (0, 3))
        with pytest.raises(RankError):
            validate_ranks((5, 6), (2, 7))

    def test_clip(self):
        assert clip_ranks((5, 3), (10, 2)) == (5, 2)
        assert clip_ranks((5, 3), (0, 9)) == (1, 3)


class TestHosvd:
    def test_exact_recovery_of_low_rank(self):
        tensor = random_low_rank((6, 7, 8), (2, 3, 2), seed=0)
        tucker = hosvd(tensor, (2, 3, 2))
        assert tucker.relative_error(tensor) < 1e-10

    def test_orthonormal_factors(self):
        tensor = random_low_rank((6, 7, 8), (2, 3, 2), seed=0)
        tucker = hosvd(tensor, (2, 3, 2))
        for factor in tucker.factors:
            assert np.allclose(
                factor.T @ factor, np.eye(factor.shape[1]), atol=1e-10
            )

    def test_sparse_input_matches_dense(self):
        tensor = random_low_rank((6, 7, 8), (2, 3, 2), seed=0)
        sparse = SparseTensor.from_dense(tensor, keep_zeros=True)
        dense_result = hosvd(tensor, (2, 3, 2))
        sparse_result = hosvd(sparse, (2, 3, 2))
        assert np.allclose(
            dense_result.reconstruct(), sparse_result.reconstruct()
        )

    def test_truncation_error_monotone_in_rank(self, rng):
        tensor = rng.standard_normal((6, 6, 6))
        errors = [
            hosvd(tensor, (r, r, r)).relative_error(tensor) for r in (1, 3, 6)
        ]
        assert errors[0] >= errors[1] >= errors[2]

    def test_rejects_bad_ranks(self, rng):
        with pytest.raises(RankError):
            hosvd(rng.standard_normal((4, 4)), (5, 2))


class TestHooi:
    def test_refines_or_matches_hosvd(self, rng):
        tensor = rng.standard_normal((8, 8, 8))
        ranks = (3, 3, 3)
        base = hosvd(tensor, ranks).relative_error(tensor)
        refined = hooi(tensor, ranks).relative_error(tensor)
        assert refined <= base + 1e-10

    def test_exact_on_low_rank(self):
        tensor = random_low_rank((6, 5, 7), (2, 2, 2), seed=3)
        assert hooi(tensor, (2, 2, 2)).relative_error(tensor) < 1e-9

    def test_accepts_initial(self, rng):
        tensor = rng.standard_normal((6, 6, 6))
        initial = hosvd(tensor, (2, 2, 2))
        result = hooi(tensor, (2, 2, 2), initial=initial, n_iter=2)
        assert result.relative_error(tensor) <= initial.relative_error(tensor) + 1e-10
