"""Seeded random tensor generators."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor import (
    hosvd,
    make_rng,
    random_dense,
    random_low_rank,
    random_orthonormal,
    random_sparse,
    spawn_seeds,
)


class TestMakeRng:
    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_seed_reproducible(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)


class TestRandomDense:
    def test_shape_and_seed(self):
        a = random_dense((3, 4), seed=1)
        b = random_dense((3, 4), seed=1)
        assert a.shape == (3, 4)
        assert np.array_equal(a, b)

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            random_dense((0, 3))


class TestRandomLowRank:
    def test_has_requested_multilinear_rank(self):
        tensor = random_low_rank((6, 7, 8), (2, 3, 2), seed=2)
        assert hosvd(tensor, (2, 3, 2)).relative_error(tensor) < 1e-10

    def test_noise_breaks_exactness(self):
        tensor = random_low_rank((6, 7, 8), (2, 2, 2), noise=0.5, seed=2)
        assert hosvd(tensor, (2, 2, 2)).relative_error(tensor) > 1e-3

    def test_rejects_bad_ranks(self):
        with pytest.raises(RankError):
            random_low_rank((4, 4), (5, 1))
        with pytest.raises(RankError):
            random_low_rank((4, 4), (2,))


class TestRandomSparse:
    def test_density(self):
        tensor = random_sparse((10, 10, 10), 0.05, seed=0)
        assert tensor.nnz == 50

    def test_at_least_one_cell(self):
        assert random_sparse((50, 50), 1e-9, seed=0).nnz == 1

    def test_rejects_bad_density(self):
        with pytest.raises(ShapeError):
            random_sparse((4, 4), 0.0)
        with pytest.raises(ShapeError):
            random_sparse((4, 4), 1.5)

    def test_no_duplicate_coordinates(self):
        tensor = random_sparse((6, 6), 0.5, seed=3)
        unique = np.unique(tensor.coords, axis=0)
        assert unique.shape[0] == tensor.nnz


class TestRandomOrthonormal:
    def test_orthonormal(self):
        q = random_orthonormal(8, 3, seed=1)
        assert np.allclose(q.T @ q, np.eye(3), atol=1e-10)

    def test_rejects_too_many_columns(self):
        with pytest.raises(ShapeError):
            random_orthonormal(3, 5)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds_a = spawn_seeds(42, 4)
        seeds_b = spawn_seeds(42, 4)
        assert len(seeds_a) == 4
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == 4
