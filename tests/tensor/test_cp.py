"""CP-ALS: recovery of low-rank structure and container invariants."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor import CPTensor, cp_als, outer


def rank_r_tensor(rng, shape, rank):
    factors = [rng.standard_normal((s, rank)) for s in shape]
    tensor = np.zeros(shape)
    for r in range(rank):
        tensor += outer([f[:, r] for f in factors])
    return tensor


class TestCPTensor:
    def test_reconstruct_rank_one(self, rng):
        u = rng.standard_normal(4)
        v = rng.standard_normal(5)
        w = rng.standard_normal(3)
        model = CPTensor(
            weights=[1.0],
            factors=[u[:, None], v[:, None], w[:, None]],
        )
        assert np.allclose(model.reconstruct(), outer([u, v, w]))

    def test_weights_scale(self, rng):
        u = rng.standard_normal(4)[:, None]
        v = rng.standard_normal(5)[:, None]
        model = CPTensor([2.0], [u, v])
        assert np.allclose(model.reconstruct(), 2.0 * np.outer(u, v))

    def test_rejects_bad_factor(self, rng):
        with pytest.raises(ShapeError):
            CPTensor([1.0, 1.0], [rng.standard_normal((4, 1))])

    def test_properties(self, rng):
        model = CPTensor(
            [1.0, 2.0],
            [rng.standard_normal((4, 2)), rng.standard_normal((5, 2))],
        )
        assert model.rank == 2
        assert model.shape == (4, 5)


class TestCpAls:
    def test_recovers_rank_one(self, rng):
        tensor = rank_r_tensor(rng, (5, 6, 7), 1)
        model = cp_als(tensor, 1)
        assert model.relative_error(tensor) < 1e-8

    def test_recovers_rank_two(self, rng):
        tensor = rank_r_tensor(rng, (6, 7, 8), 2)
        model = cp_als(tensor, 2, n_iter=200)
        assert model.relative_error(tensor) < 1e-6

    def test_error_decreases_with_rank(self, rng):
        tensor = rng.standard_normal((5, 5, 5))
        errors = [
            cp_als(tensor, r, n_iter=30).relative_error(tensor)
            for r in (1, 3)
        ]
        assert errors[1] <= errors[0] + 1e-8

    def test_matrix_input(self, rng):
        matrix = rank_r_tensor(rng, (6, 7), 2)
        model = cp_als(matrix, 2, n_iter=100)
        assert model.relative_error(matrix) < 1e-6

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(RankError):
            cp_als(rng.standard_normal((3, 3)), 0)

    def test_rejects_vector(self, rng):
        with pytest.raises(ShapeError):
            cp_als(rng.standard_normal(5), 1)
