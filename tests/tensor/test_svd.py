"""Deterministic truncated SVD: correctness, determinism, dispatch."""

import numpy as np
import pytest
import scipy.sparse as sps

from repro.exceptions import RankError
from repro.tensor import (
    deterministic_signs,
    leading_left_singular_vectors,
    spectral_energy,
    truncated_svd,
)


class TestDeterministicSigns:
    def test_largest_entry_positive(self, rng):
        basis = rng.standard_normal((6, 3))
        fixed = deterministic_signs(basis)
        for col in range(3):
            pivot = np.abs(fixed[:, col]).argmax()
            assert fixed[pivot, col] > 0

    def test_idempotent(self, rng):
        basis = deterministic_signs(rng.standard_normal((6, 3)))
        assert np.allclose(deterministic_signs(basis), basis)

    def test_zero_column_untouched(self):
        basis = np.zeros((4, 2))
        basis[:, 0] = [0, -3, 1, 0]
        fixed = deterministic_signs(basis)
        assert np.allclose(fixed[:, 1], 0)
        assert fixed[1, 0] == 3


class TestTruncatedSvd:
    def test_reconstruction_full_rank(self, rng):
        matrix = rng.standard_normal((8, 5))
        u, s, vt = truncated_svd(matrix, 5)
        assert np.allclose(u @ np.diag(s) @ vt, matrix)

    def test_orthonormal_u(self, rng):
        matrix = rng.standard_normal((10, 6))
        u, _s, _vt = truncated_svd(matrix, 3)
        assert np.allclose(u.T @ u, np.eye(3), atol=1e-10)

    def test_singular_values_sorted(self, rng):
        _u, s, _vt = truncated_svd(rng.standard_normal((10, 8)), 5)
        assert np.all(np.diff(s) <= 1e-12)

    def test_sparse_and_dense_agree(self, rng):
        dense = rng.standard_normal((40, 35))
        dense[np.abs(dense) < 1.0] = 0.0
        sparse = sps.csr_matrix(dense)
        u_dense, s_dense, _ = truncated_svd(dense, 4)
        u_sparse, s_sparse, _ = truncated_svd(sparse, 4)
        assert np.allclose(s_dense, s_sparse, atol=1e-8)
        assert np.allclose(np.abs(u_dense), np.abs(u_sparse), atol=1e-6)

    def test_sparse_small_falls_back_to_dense(self, rng):
        dense = rng.standard_normal((6, 5))
        sparse = sps.csr_matrix(dense)
        u1, s1, _ = truncated_svd(dense, 5)
        u2, s2, _ = truncated_svd(sparse, 5)
        assert np.allclose(u1, u2)
        assert np.allclose(s1, s2)

    def test_deterministic_across_calls(self, rng):
        matrix = rng.standard_normal((50, 40))
        u1, _s1, _vt1 = truncated_svd(sps.csr_matrix(matrix), 3)
        u2, _s2, _vt2 = truncated_svd(sps.csr_matrix(matrix), 3)
        assert np.array_equal(u1, u2)

    def test_rank_validation(self, rng):
        matrix = rng.standard_normal((4, 3))
        with pytest.raises(RankError):
            truncated_svd(matrix, 0)
        with pytest.raises(RankError):
            truncated_svd(matrix, 4)


class TestHelpers:
    def test_leading_vectors_shape(self, rng):
        u = leading_left_singular_vectors(rng.standard_normal((7, 9)), 2)
        assert u.shape == (7, 2)

    def test_spectral_energy_full_is_frobenius(self, rng):
        matrix = rng.standard_normal((5, 4))
        assert spectral_energy(matrix, 4) == pytest.approx(
            (matrix**2).sum()
        )

    def test_spectral_energy_monotone(self, rng):
        matrix = rng.standard_normal((6, 6))
        energies = [spectral_energy(matrix, r) for r in (1, 3, 6)]
        assert energies[0] <= energies[1] <= energies[2]
