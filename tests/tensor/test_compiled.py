"""Compiled sparse layout: a pure acceleration structure.

``SparseTensor.compile()`` must never change results — the property
wall asserts bit-identity of coords/values/unfoldings/TTMs against the
uncompiled tensor, and the cache tests pin the
``tensor.unfold_cache_hits`` metering that proves the memoization is
actually engaged during HOOI sweeps.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.tensor import SparseTensor, hooi, sparse_ttm


def _random_sparse(seed: int, ndim: int = 3) -> SparseTensor:
    rng = np.random.default_rng(seed)
    dims = tuple(int(d) for d in rng.integers(2, 6, size=ndim))
    dense = rng.standard_normal(dims)
    dense[rng.random(dims) < 0.6] = 0.0
    return SparseTensor.from_dense(dense)


class TestCompileRoundTrip:
    @given(seed=st.integers(0, 10_000), ndim=st.integers(3, 5))
    @settings(max_examples=30, deadline=None)
    def test_coords_and_values_untouched(self, seed, ndim):
        tensor = _random_sparse(seed, ndim)
        coords_before = tensor.coords.copy()
        values_before = tensor.values.copy()
        compiled = tensor.compile()
        assert compiled is tensor
        assert np.array_equal(tensor.coords, coords_before)
        assert np.array_equal(tensor.values, values_before)
        assert tensor.compiled

    def test_compile_is_idempotent(self):
        tensor = _random_sparse(0)
        layout = tensor.compile()._layout
        assert tensor.compile()._layout is layout

    @given(seed=st.integers(0, 10_000), ndim=st.integers(3, 4))
    @settings(max_examples=30, deadline=None)
    def test_unfold_csr_bit_identical(self, seed, ndim):
        plain = _random_sparse(seed, ndim)
        compiled = _random_sparse(seed, ndim).compile()
        for mode in range(plain.ndim):
            a = plain.unfold_csr(mode)
            b = compiled.unfold_csr(mode)
            assert a.shape == b.shape
            assert np.array_equal(a.indptr, b.indptr)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.data, b.data)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_ttm_and_to_dense_unchanged(self, seed):
        plain = _random_sparse(seed)
        compiled = _random_sparse(seed).compile()
        rng = np.random.default_rng(seed + 1)
        matrix = rng.standard_normal((2, plain.shape[0]))
        assert np.array_equal(
            sparse_ttm(plain, matrix, 0), sparse_ttm(compiled, matrix, 0)
        )
        assert np.array_equal(plain.to_dense(), compiled.to_dense())


class TestUnfoldCache:
    def test_repeat_unfolds_hit_cache(self):
        tensor = _random_sparse(3).compile()
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = tensor.unfold_csr(0)
            second = tensor.unfold_csr(0)
            assert second is first
            assert registry.counter("tensor.unfold_cache_hits").value == 1

    def test_uncompiled_never_hits(self):
        tensor = _random_sparse(4)
        registry = MetricsRegistry()
        with use_metrics(registry):
            tensor.unfold_csr(0)
            tensor.unfold_csr(0)
            assert registry.counter("tensor.unfold_cache_hits").value == 0

    def test_hooi_sweep_meters_cache_hits(self):
        """Satellite guard: ``tensor.unfold_cache_hits`` is metered in
        a HOOI sweep over a compiled sparse tensor."""
        rng = np.random.default_rng(5)
        dense = rng.standard_normal((6, 7, 8))
        dense[rng.random(dense.shape) < 0.7] = 0.0
        tensor = SparseTensor.from_dense(dense).compile()
        registry = MetricsRegistry()
        with use_metrics(registry):
            hooi(tensor, (3, 3, 3), n_iter=2, method="gram")
            hooi(tensor, (3, 3, 3), n_iter=2, method="gram")
            assert registry.counter("tensor.unfold_cache_hits").value > 0
