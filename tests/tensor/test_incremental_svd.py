"""Incremental SVD updates."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor.incremental_svd import append_cols, append_rows, exact_svd


class TestAppendRows:
    def test_exact_at_full_rank(self, rng):
        matrix = rng.standard_normal((10, 8))
        rows = rng.standard_normal((3, 8))
        u, s, vt = exact_svd(matrix, 8)
        u2, s2, vt2 = append_rows(u, s, vt, rows, rank=8)
        full = np.vstack([matrix, rows])
        assert np.allclose((u2 * s2) @ vt2, full, atol=1e-10)
        _ue, se, _vte = exact_svd(full, 8)
        assert np.allclose(s2, se, atol=1e-10)

    def test_orthonormal_output(self, rng):
        matrix = rng.standard_normal((10, 8))
        u, s, vt = exact_svd(matrix, 4)
        u2, _s2, vt2 = append_rows(u, s, vt, rng.standard_normal((2, 8)), 4)
        assert np.allclose(u2.T @ u2, np.eye(4), atol=1e-10)
        assert np.allclose(vt2 @ vt2.T, np.eye(4), atol=1e-10)

    def test_truncated_update_close_to_batch(self, rng):
        matrix = rng.standard_normal((20, 12))
        rows = rng.standard_normal((4, 12))
        u, s, vt = exact_svd(matrix, 5)
        _u2, s2, _vt2 = append_rows(u, s, vt, rows, rank=5)
        _ue, se, _vte = exact_svd(np.vstack([matrix, rows]), 5)
        assert np.abs(s2 - se).max() / se.max() < 0.1

    def test_single_row_vector(self, rng):
        matrix = rng.standard_normal((6, 5))
        u, s, vt = exact_svd(matrix, 5)
        row = rng.standard_normal(5)
        u2, s2, vt2 = append_rows(u, s, vt, row, rank=5)
        assert u2.shape == (7, 5)

    def test_rejects_column_mismatch(self, rng):
        matrix = rng.standard_normal((6, 5))
        u, s, vt = exact_svd(matrix, 3)
        with pytest.raises(ShapeError):
            append_rows(u, s, vt, rng.standard_normal((2, 4)), 3)

    def test_rejects_bad_rank(self, rng):
        matrix = rng.standard_normal((6, 5))
        u, s, vt = exact_svd(matrix, 3)
        with pytest.raises(RankError):
            append_rows(u, s, vt, rng.standard_normal((2, 5)), 0)

    def test_rejects_inconsistent_triple(self, rng):
        with pytest.raises(ShapeError):
            append_rows(
                rng.standard_normal((5, 3)),
                np.ones(2),
                rng.standard_normal((3, 4)),
                rng.standard_normal((1, 4)),
                2,
            )

    def test_in_subspace_rows(self, rng):
        """Rows already inside the right space need no basis growth."""
        matrix = rng.standard_normal((8, 6))
        u, s, vt = exact_svd(matrix, 6)
        rows = rng.standard_normal((2, 6)) @ vt.T @ vt  # project in
        u2, s2, vt2 = append_rows(u, s, vt, rows, rank=6)
        full = np.vstack([matrix, rows])
        assert np.allclose((u2 * s2) @ vt2, full, atol=1e-9)


class TestAppendCols:
    def test_exact_at_full_rank(self, rng):
        matrix = rng.standard_normal((10, 8))
        cols = rng.standard_normal((10, 4))
        u, s, vt = exact_svd(matrix, 8)
        u2, s2, vt2 = append_cols(u, s, vt, cols, rank=10)
        full = np.hstack([matrix, cols])
        assert np.allclose((u2 * s2) @ vt2, full, atol=1e-10)

    def test_top_singular_values_match(self, rng):
        matrix = rng.standard_normal((10, 8))
        cols = rng.standard_normal((10, 4))
        u, s, vt = exact_svd(matrix, 8)
        _u2, s2, _vt2 = append_cols(u, s, vt, cols, rank=8)
        _ue, se, _vte = exact_svd(np.hstack([matrix, cols]), 8)
        assert np.allclose(s2, se, atol=1e-10)

    def test_rejects_row_mismatch(self, rng):
        matrix = rng.standard_normal((6, 5))
        u, s, vt = exact_svd(matrix, 3)
        with pytest.raises(ShapeError):
            append_cols(u, s, vt, rng.standard_normal((5, 2)), 3)
