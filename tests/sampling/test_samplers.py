"""Conventional samplers: RANDOM, GRID, SLICE (paper Section IV)."""

import numpy as np
import pytest

from repro.exceptions import BudgetError, SamplingError
from repro.sampling import (
    GridSampler,
    RandomSampler,
    SampleSet,
    SliceSampler,
    balanced_grid_counts,
    choose_free_modes,
    spread_indices,
    validate_budget,
)

SHAPE = (6, 6, 6, 6, 6)


class TestSampleSet:
    def test_dedupes(self):
        sample = SampleSet((4, 4), np.array([[0, 0], [0, 0], [1, 1]]))
        assert sample.n_cells == 2

    def test_density(self):
        sample = SampleSet((4, 4), np.array([[0, 0], [1, 1]]))
        assert sample.density == pytest.approx(2 / 16)

    def test_n_runs_excludes_time(self):
        sample = SampleSet(
            (3, 3, 3), np.array([[0, 0, 0], [0, 0, 1], [1, 0, 0]])
        )
        assert sample.n_runs(time_mode=2) == 2

    def test_rejects_out_of_bounds(self):
        with pytest.raises(SamplingError):
            SampleSet((2, 2), np.array([[0, 3]]))

    def test_rejects_bad_width(self):
        with pytest.raises(SamplingError):
            SampleSet((2, 2), np.array([[0, 0, 0]]))


class TestValidateBudget:
    def test_rejects_nonpositive(self):
        with pytest.raises(BudgetError):
            validate_budget(0, (4, 4))

    def test_rejects_over_capacity(self):
        with pytest.raises(BudgetError):
            validate_budget(17, (4, 4))


class TestRandomSampler:
    def test_exact_budget(self):
        sample = RandomSampler(seed=0).sample(SHAPE, 100)
        assert sample.n_cells == 100

    def test_no_duplicates(self):
        sample = RandomSampler(seed=0).sample((4, 4), 10)
        assert np.unique(sample.coords, axis=0).shape[0] == 10

    def test_seed_reproducible(self):
        a = RandomSampler(seed=5).sample(SHAPE, 50)
        b = RandomSampler(seed=5).sample(SHAPE, 50)
        assert np.array_equal(a.coords, b.coords)

    def test_full_budget_covers_space(self):
        sample = RandomSampler(seed=0).sample((3, 3), 9)
        assert sample.n_cells == 9


class TestGridHelpers:
    def test_balanced_counts_within_budget(self):
        counts = balanced_grid_counts(SHAPE, 100)
        assert np.prod(counts) <= 100
        # Greedy balance: no mode can be incremented without either
        # blowing the budget or exceeding its size.
        for mode in range(len(SHAPE)):
            bumped = list(counts)
            bumped[mode] += 1
            assert (
                bumped[mode] > SHAPE[mode] or np.prod(bumped) > 100
            )

    def test_counts_capped_by_mode(self):
        counts = balanced_grid_counts((2, 50), 40)
        assert counts[0] <= 2

    def test_spread_indices(self):
        indices = spread_indices(10, 3)
        assert indices[0] == 0
        assert indices[-1] == 9
        assert len(indices) == 3

    def test_spread_indices_full(self):
        assert np.array_equal(spread_indices(4, 9), np.arange(4))


class TestGridSampler:
    def test_within_budget(self):
        sample = GridSampler().sample(SHAPE, 200)
        assert sample.n_cells <= 200

    def test_is_lattice(self):
        sample = GridSampler().sample(SHAPE, 64)
        # Every mode uses a fixed set of values; the sample is their
        # full cross product.
        axes = [np.unique(sample.coords[:, m]) for m in range(5)]
        assert sample.n_cells == int(np.prod([len(a) for a in axes]))

    def test_deterministic(self):
        a = GridSampler().sample(SHAPE, 100)
        b = GridSampler().sample(SHAPE, 100)
        assert np.array_equal(a.coords, b.coords)


class TestSliceHelpers:
    def test_choose_free_modes_prefers_trailing(self):
        free = choose_free_modes(SHAPE, 6 * 6)
        assert free == (3, 4)

    def test_choose_free_modes_empty_when_budget_tiny(self):
        assert choose_free_modes(SHAPE, 5) == ()


class TestSliceSampler:
    def test_within_budget(self):
        sample = SliceSampler(seed=0).sample(SHAPE, 100)
        assert sample.n_cells <= 100

    def test_slices_are_full(self):
        sample = SliceSampler(seed=0).sample(SHAPE, 72)
        # free modes (3, 4): for each selected prefix, all 36 combos.
        prefixes = np.unique(sample.coords[:, :3], axis=0)
        assert sample.n_cells == prefixes.shape[0] * 36

    def test_degenerates_to_random_when_budget_below_fiber(self):
        sample = SliceSampler(seed=0).sample(SHAPE, 4)
        assert sample.n_cells == 4
