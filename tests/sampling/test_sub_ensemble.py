"""Sub-ensemble selection: shared pivots, cross products, embedding."""

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.sampling import (
    PFPartition,
    PartitionBudget,
    SubEnsembleSelection,
    select_sub_ensembles,
)

SHAPE = (6, 6, 6, 6, 6)


def partition():
    return PFPartition(SHAPE, (4,), (0, 1), (2, 3))


class TestSelectSubEnsembles:
    def test_full_selection_enumerates_everything(self):
        selection = select_sub_ensembles(
            partition(), PartitionBudget(6, 36, 36), seed=0
        )
        assert selection.pivot_configs.shape == (6, 1)
        assert selection.free1.shape == (36, 2)
        assert selection.sub_coords(1).shape == (216, 3)

    def test_partial_selection_counts(self):
        selection = select_sub_ensembles(
            partition(), PartitionBudget(3, 10, 12), seed=0
        )
        assert selection.pivot_configs.shape == (3, 1)
        assert selection.free1.shape == (10, 2)
        assert selection.free2.shape == (12, 2)
        assert selection.total_cells() == 3 * 22

    def test_pivots_shared_between_sides(self):
        selection = select_sub_ensembles(
            partition(), PartitionBudget(3, 5, 5), seed=1
        )
        pivots1 = np.unique(selection.sub_coords(1)[:, 0])
        pivots2 = np.unique(selection.sub_coords(2)[:, 0])
        assert np.array_equal(pivots1, pivots2)

    def test_no_duplicate_configs(self):
        selection = select_sub_ensembles(
            partition(), PartitionBudget(4, 20, 20), seed=2
        )
        assert np.unique(selection.free1, axis=0).shape[0] == 20

    def test_seed_reproducible(self):
        a = select_sub_ensembles(partition(), PartitionBudget(3, 5, 5), seed=9)
        b = select_sub_ensembles(partition(), PartitionBudget(3, 5, 5), seed=9)
        assert np.array_equal(a.free1, b.free1)
        assert np.array_equal(a.pivot_configs, b.pivot_configs)

    def test_overdraw_rejected(self):
        with pytest.raises(SamplingError):
            select_sub_ensembles(partition(), PartitionBudget(7, 5, 5))


class TestSubEnsembleSelection:
    def test_budget_property(self):
        selection = select_sub_ensembles(
            partition(), PartitionBudget(2, 3, 4), seed=0
        )
        budget = selection.budget
        assert (budget.n_pivot, budget.n_free1, budget.n_free2) == (2, 3, 4)

    def test_full_coords_pin_frozen_modes(self):
        part = partition()
        selection = select_sub_ensembles(part, PartitionBudget(2, 3, 3), seed=0)
        full = selection.full_coords(1)
        for mode in part.s2_free:
            assert (full[:, mode] == part.fixed_indices[mode]).all()

    def test_union_sample_set(self):
        part = partition()
        selection = select_sub_ensembles(part, PartitionBudget(2, 3, 3), seed=0)
        union = selection.union_sample_set()
        assert union.shape == SHAPE
        assert union.n_cells <= selection.total_cells()

    def test_invalid_sub_system(self):
        selection = select_sub_ensembles(
            partition(), PartitionBudget(2, 3, 3), seed=0
        )
        with pytest.raises(SamplingError):
            selection.free_configs(0)

    def test_rejects_wrong_width(self):
        part = partition()
        with pytest.raises(SamplingError):
            SubEnsembleSelection(
                part,
                pivot_configs=np.zeros((2, 2), dtype=int),
                free1=np.zeros((3, 2), dtype=int),
                free2=np.zeros((3, 2), dtype=int),
            )
