"""PF-partitioning: mode bookkeeping and coordinate embedding."""

import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.sampling import PFPartition
from repro.simulation import DoublePendulum, ParameterSpace

SHAPE = (6, 6, 6, 6, 6)


def default_partition():
    return PFPartition(
        shape=SHAPE, pivot_modes=(4,), s1_free=(0, 1), s2_free=(2, 3)
    )


class TestConstruction:
    def test_basic(self):
        part = default_partition()
        assert part.k == 1
        assert part.sub_modes(1) == (4, 0, 1)
        assert part.sub_modes(2) == (4, 2, 3)
        assert part.sub_shape(1) == (6, 6, 6)

    def test_default_fixing_is_middle(self):
        part = default_partition()
        assert part.fixed_indices == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_rejects_incomplete_partition(self):
        with pytest.raises(PartitionError):
            PFPartition(SHAPE, (4,), (0,), (2, 3))

    def test_rejects_overlap(self):
        with pytest.raises(PartitionError):
            PFPartition(SHAPE, (4,), (0, 1, 2), (2, 3))

    def test_rejects_no_pivot(self):
        with pytest.raises(PartitionError):
            PFPartition(SHAPE, (), (0, 1, 4), (2, 3))

    def test_rejects_empty_side(self):
        with pytest.raises(PartitionError):
            PFPartition((4, 4), (0,), (1,), ())

    def test_rejects_bad_fixing_index(self):
        with pytest.raises(PartitionError):
            PFPartition(SHAPE, (4,), (0, 1), (2, 3), fixed_indices={0: 9})

    def test_bad_sub_system_id(self):
        with pytest.raises(PartitionError):
            default_partition().sub_modes(3)


class TestJoinGeometry:
    def test_join_modes_and_shape(self):
        part = default_partition()
        assert part.join_modes == (4, 0, 1, 2, 3)
        assert part.join_shape == SHAPE

    def test_join_to_original_is_inverse(self):
        part = default_partition()
        perm = part.join_to_original
        # Applying the permutation to the join order recovers 0..N-1.
        recovered = [part.join_modes[p] for p in perm]
        assert recovered == list(range(5))

    def test_pivot_and_free_sizes(self):
        part = default_partition()
        assert part.pivot_space_size == 6
        assert part.free_space_size(1) == 36
        assert part.free_space_size(2) == 36


class TestEmbedding:
    def test_embed_fills_fixed(self):
        part = default_partition()
        full = part.embed_coords(1, np.array([[2, 1, 0]]))
        # sub modes (4, 0, 1): t=2, phi1=1, m1=0; modes 2,3 fixed at 3.
        assert full.tolist() == [[1, 0, 3, 3, 2]]

    def test_embed_rejects_bad_width(self):
        with pytest.raises(PartitionError):
            default_partition().embed_coords(1, np.zeros((1, 2), dtype=int))

    def test_extract_sub_tensor(self, rng):
        part = default_partition()
        full = rng.standard_normal(SHAPE)
        sub = part.extract_sub_tensor(1, full)
        assert sub.shape == (6, 6, 6)
        # sub[(t, phi1, m1)] == full[phi1, m1, fix, fix, t]
        assert sub[2, 1, 0] == pytest.approx(full[1, 0, 3, 3, 2])

    def test_extract_rejects_shape_mismatch(self, rng):
        with pytest.raises(PartitionError):
            default_partition().extract_sub_tensor(
                1, rng.standard_normal((2, 2))
            )


class TestForSpace:
    def test_default_split(self):
        space = ParameterSpace(DoublePendulum(), resolution=6)
        part = PFPartition.for_space(space, pivot="t")
        assert part.pivot_modes == (4,)
        assert part.s1_free == (0, 1)
        assert part.s2_free == (2, 3)

    def test_fixing_constants_near_defaults(self):
        space = ParameterSpace(DoublePendulum(), resolution=6)
        part = PFPartition.for_space(space, pivot="t")
        for mode in (0, 1, 2, 3):
            grid = space.grid(mode)
            default = space.system.parameters[mode].default
            fixed_value = grid[part.fixed_indices[mode]]
            assert abs(fixed_value - default) == pytest.approx(
                np.abs(grid - default).min()
            )

    def test_named_split(self):
        space = ParameterSpace(DoublePendulum(), resolution=6)
        part = PFPartition.for_space(
            space, pivot="m1", s1_free=("phi1", "t"), s2_free=("phi2", "m2")
        )
        assert part.pivot_modes == (1,)
        assert part.s1_free == (0, 4)
        assert part.s2_free == (2, 3)
        # frozen time mode gets the middle index
        assert part.fixed_indices[4] == space.time_resolution // 2

    def test_explicit_fixed_indices(self):
        space = ParameterSpace(DoublePendulum(), resolution=6)
        part = PFPartition.for_space(space, pivot="t", fixed_indices={"m2": 0})
        assert part.fixed_indices[3] == 0

    def test_rejects_one_sided_split(self):
        space = ParameterSpace(DoublePendulum(), resolution=6)
        with pytest.raises(PartitionError):
            PFPartition.for_space(space, pivot="t", s1_free=("phi1", "m1"))

    def test_rejects_unbalanced_split(self):
        space = ParameterSpace(DoublePendulum(), resolution=6)
        with pytest.raises(PartitionError):
            PFPartition.for_space(
                space, pivot="t", s1_free=("phi1",), s2_free=("m1", "phi2", "m2")
            )
