"""Budget arithmetic: the P*E and P*E^2 formulas of Sections I-C/V."""

import pytest

from repro.exceptions import BudgetError
from repro.sampling import (
    PartitionBudget,
    PFPartition,
    budget_for_fractions,
    effective_density_ratio,
)

SHAPE = (6, 6, 6, 6, 6)


def partition():
    return PFPartition(SHAPE, (4,), (0, 1), (2, 3))


class TestPartitionBudget:
    def test_cells(self):
        budget = PartitionBudget(n_pivot=6, n_free1=36, n_free2=36)
        assert budget.cells == 6 * 72

    def test_join_entries(self):
        budget = PartitionBudget(6, 36, 36)
        assert budget.join_entries == 6 * 36 * 36

    def test_rejects_nonpositive(self):
        with pytest.raises(BudgetError):
            PartitionBudget(0, 1, 1)
        with pytest.raises(BudgetError):
            PartitionBudget(1, 1, -2)


class TestBudgetForFractions:
    def test_full(self):
        budget = budget_for_fractions(partition(), 1.0, 1.0)
        assert budget.n_pivot == 6
        assert budget.n_free1 == 36
        assert budget.n_free2 == 36

    def test_half(self):
        budget = budget_for_fractions(partition(), 0.5, 0.5)
        assert budget.n_pivot == 3
        assert budget.n_free1 == 18

    def test_floor_at_one(self):
        budget = budget_for_fractions(partition(), 0.01, 0.01)
        assert budget.n_pivot == 1
        assert budget.n_free1 == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(BudgetError):
            budget_for_fractions(partition(), 0.0, 1.0)
        with pytest.raises(BudgetError):
            budget_for_fractions(partition(), 1.0, 1.2)


class TestEffectiveDensityRatio:
    def test_full_density_gain_is_half_e(self):
        part = partition()
        budget = budget_for_fractions(part, 1.0, 1.0)
        # gain = join_entries / cells = P*E^2 / (2*P*E) = E/2
        assert effective_density_ratio(part, budget) == pytest.approx(18.0)

    def test_gain_scales_linearly_with_e(self):
        part = partition()
        full = effective_density_ratio(part, budget_for_fractions(part, 1.0, 1.0))
        half = effective_density_ratio(part, budget_for_fractions(part, 1.0, 0.5))
        assert half == pytest.approx(full / 2)

    def test_gain_independent_of_p(self):
        part = partition()
        full = effective_density_ratio(part, budget_for_fractions(part, 1.0, 1.0))
        low_p = effective_density_ratio(part, budget_for_fractions(part, 0.5, 1.0))
        assert low_p == pytest.approx(full)
