"""Latin hypercube sampler."""

import numpy as np
import pytest

from repro.sampling import LatinHypercubeSampler, lhs_round

SHAPE = (8, 8, 8, 8)


class TestLhsRound:
    def test_one_point_per_stratum(self):
        rng = np.random.default_rng(0)
        points = lhs_round((8, 8), 8, rng)
        # With n_points == size, every index appears exactly once per mode.
        for mode in range(2):
            assert sorted(points[:, mode]) == list(range(8))

    def test_spread_when_undersampled(self):
        rng = np.random.default_rng(1)
        points = lhs_round((16,), 4, rng)
        # 4 strata of width 4: one point in each quarter.
        quarters = sorted(points[:, 0] // 4)
        assert quarters == [0, 1, 2, 3]

    def test_within_bounds(self):
        rng = np.random.default_rng(2)
        points = lhs_round((5, 7, 3), 10, rng)
        assert (points >= 0).all()
        assert (points < np.array([5, 7, 3])).all()


class TestLatinHypercubeSampler:
    def test_exact_budget(self):
        sample = LatinHypercubeSampler(seed=0).sample(SHAPE, 100)
        assert sample.n_cells == 100

    def test_no_duplicates(self):
        sample = LatinHypercubeSampler(seed=0).sample(SHAPE, 200)
        assert np.unique(sample.coords, axis=0).shape[0] == 200

    def test_seed_reproducible(self):
        a = LatinHypercubeSampler(seed=3).sample(SHAPE, 64)
        b = LatinHypercubeSampler(seed=3).sample(SHAPE, 64)
        assert np.array_equal(a.coords, b.coords)

    def test_better_marginal_coverage_than_random(self):
        """LHS's defining property: per-mode marginals are (nearly)
        uniform, so the per-mode index coverage beats random sampling
        at small budgets."""
        budget = 8
        lhs = LatinHypercubeSampler(seed=0).sample(SHAPE, budget)
        # every mode's 8 indices are all hit by 8 LHS points
        for mode in range(len(SHAPE)):
            assert len(np.unique(lhs.coords[:, mode])) == 8

    def test_full_space(self):
        sample = LatinHypercubeSampler(seed=1).sample((3, 3), 9)
        assert sample.n_cells == 9

    def test_budget_validation(self):
        from repro.exceptions import BudgetError

        with pytest.raises(BudgetError):
            LatinHypercubeSampler(seed=0).sample((2, 2), 5)
