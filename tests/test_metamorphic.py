"""Metamorphic tests: relations that must hold between *pairs* of runs.

Three families from the paper's arithmetic:

* HOSVD/Tucker reconstruction is equivariant under mode permutation —
  relabelling the modes of the input relabels the reconstruction and
  changes nothing else;
* zero-join stitching degenerates to plain join stitching when every
  pivot configuration is fully matched on both sides (no one-sided
  observations exist to pad);
* unfold/fold is an exact bijection (pure index shuffling, so equality
  is bit-for-bit, not approximate) — and stays one with a live tracer
  installed, i.e. instrumentation cannot perturb numerics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import join_tensor, zero_join_tensor
from repro.observability import Tracer, use_tracer
from repro.sampling import PFPartition
from repro.tensor import SparseTensor, fold, hosvd, unfold

shapes3 = st.tuples(
    st.integers(2, 4), st.integers(2, 4), st.integers(2, 4)
)


def dense_tensors(shape_strategy=shapes3):
    return shape_strategy.flatmap(
        lambda shape: hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )


class TestHosvdPermutationEquivariance:
    @given(seed=st.integers(0, 2**32 - 1), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_commutes_with_mode_permutation(self, seed, data):
        # Gaussian entries keep the mode-n spectra non-degenerate, so
        # the truncated subspaces (and hence the reconstructions) are
        # well defined on both sides of the relation.
        ndim = data.draw(st.integers(3, 4))
        shape = tuple(
            data.draw(st.integers(2, 4), label=f"dim{m}")
            for m in range(ndim)
        )
        ranks = [
            data.draw(st.integers(1, size), label=f"rank{m}")
            for m, size in enumerate(shape)
        ]
        perm = tuple(data.draw(st.permutations(range(ndim))))
        tensor = np.random.default_rng(seed).standard_normal(shape)

        base = hosvd(tensor, ranks).reconstruct()
        permuted = hosvd(
            tensor.transpose(perm), [ranks[m] for m in perm]
        ).reconstruct()

        assert np.allclose(permuted, base.transpose(perm), atol=1e-6)

    def test_full_rank_identity_under_permutation(self, rng):
        tensor = rng.standard_normal((3, 4, 2))
        recon = hosvd(tensor.transpose(2, 0, 1), [2, 3, 4]).reconstruct()
        assert np.allclose(recon, tensor.transpose(2, 0, 1), atol=1e-10)


class TestZeroJoinDegeneratesToJoin:
    @given(seed=st.integers(0, 2**32 - 1), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_agreement_on_fully_matched_pivots(self, seed, data):
        # Dense sub-tensors kept with explicit zeros: every pivot
        # configuration appears on both sides with every free
        # configuration, so zero-join has nothing one-sided to pad.
        dims = tuple(
            data.draw(st.integers(2, 3), label=f"dim{m}") for m in range(4)
        )
        partition = PFPartition(dims, (0,), (1,), (2, 3))
        rng_local = np.random.default_rng(seed)
        x1 = SparseTensor.from_dense(
            rng_local.standard_normal(partition.sub_shape(1)) + 2,
            keep_zeros=True,
        )
        x2 = SparseTensor.from_dense(
            rng_local.standard_normal(partition.sub_shape(2)) + 2,
            keep_zeros=True,
        )

        plain = join_tensor(x1, x2, partition)
        zero = zero_join_tensor(x1, x2, partition)

        assert zero.shape == plain.shape
        assert np.allclose(zero.to_dense(), plain.to_dense(), atol=1e-12)

    def test_one_sided_observation_breaks_the_degeneracy(self, rng):
        # Sanity check of the metamorphic premise: dropping cells from
        # one side re-activates the zero-padding path.
        partition = PFPartition((2, 2, 2, 2), (0,), (1,), (2, 3))
        dense1 = rng.standard_normal(partition.sub_shape(1)) + 2
        dense2 = rng.standard_normal(partition.sub_shape(2)) + 2
        x1 = SparseTensor.from_dense(dense1, keep_zeros=True)
        sparse2 = dense2.copy()
        sparse2.flat[0] = 0.0  # drop one observation from X2
        x2 = SparseTensor.from_dense(sparse2)

        plain = join_tensor(x1, x2, partition)
        zero = zero_join_tensor(x1, x2, partition)
        assert zero.nnz >= plain.nnz


class TestUnfoldFoldBijection:
    @given(tensor=dense_tensors(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_round_trip_is_exact(self, tensor, data):
        mode = data.draw(st.integers(0, tensor.ndim - 1))
        # Pure index shuffling: bit-for-bit equality, not allclose.
        assert np.array_equal(
            fold(unfold(tensor, mode), mode, tensor.shape), tensor
        )

    @given(tensor=dense_tensors(), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_round_trip_unchanged_by_active_tracer(self, tensor, data):
        mode = data.draw(st.integers(0, tensor.ndim - 1))
        untraced = fold(unfold(tensor, mode), mode, tensor.shape)
        with use_tracer(Tracer()) as tracer:
            traced = fold(unfold(tensor, mode), mode, tensor.shape)
        assert np.array_equal(traced, untraced)
        assert {s.name for s in tracer.iter_spans()} == {"unfold", "fold"}

    def test_matrix_side_round_trip(self, rng):
        tensor = rng.standard_normal((3, 4, 5))
        for mode in range(3):
            matrix = unfold(tensor, mode)
            assert np.array_equal(
                unfold(fold(matrix, mode, tensor.shape), mode), matrix
            )


class TestTracingIsInert:
    def test_m2td_results_identical_with_and_without_tracing(
        self, pendulum_study
    ):
        ranks = [2] * pendulum_study.space.n_modes
        base = pendulum_study.run_m2td(ranks, variant="select", seed=7)
        with use_tracer(Tracer()):
            traced = pendulum_study.run_m2td(ranks, variant="select", seed=7)
        assert traced.accuracy == pytest.approx(base.accuracy, abs=0)
        assert traced.cells == base.cells
        assert traced.join_nnz == base.join_nnz
