"""Shared fixtures: tiny ground-truth studies reused across tests.

Building the full-space tensor is the slow part of the pipeline, so
the studies are session-scoped; each test treats them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EnsembleStudy
from repro.simulation import DoublePendulum, Lorenz, TriplePendulum


@pytest.fixture(scope="session")
def pendulum_study() -> EnsembleStudy:
    """Double-pendulum study at resolution 6 (tiny but non-trivial)."""
    return EnsembleStudy.create(DoublePendulum(), resolution=6)


@pytest.fixture(scope="session")
def lorenz_study() -> EnsembleStudy:
    return EnsembleStudy.create(Lorenz(), resolution=5)


@pytest.fixture(scope="session")
def triple_study() -> EnsembleStudy:
    return EnsembleStudy.create(TriplePendulum(), resolution=5)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
