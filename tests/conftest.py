"""Shared fixtures: tiny ground-truth studies reused across tests.

Building the full-space tensor is the slow part of the pipeline, so
the studies are session-scoped; each test treats them as read-only.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import EnsembleStudy
from repro.simulation import DoublePendulum, Lorenz, TriplePendulum


@pytest.fixture(scope="session")
def pendulum_study() -> EnsembleStudy:
    """Double-pendulum study at resolution 6 (tiny but non-trivial)."""
    return EnsembleStudy.create(DoublePendulum(), resolution=6)


@pytest.fixture(scope="session")
def lorenz_study() -> EnsembleStudy:
    return EnsembleStudy.create(Lorenz(), resolution=5)


@pytest.fixture(scope="session")
def triple_study() -> EnsembleStudy:
    return EnsembleStudy.create(TriplePendulum(), resolution=5)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# D-M2TD determinism harness, shared by tests/distributed, tests/runtime
# and tests/faults: one canonical problem, one byte-level comparison.
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def dm2td_inputs():
    """Canonical small D-M2TD problem: ``(x1, x2, partition, ranks)``."""
    from repro.sampling import PFPartition
    from repro.tensor import SparseTensor

    partition = PFPartition((4, 4, 4, 4, 4), (4,), (0, 1), (2, 3))
    generator = np.random.default_rng(0)
    x1 = SparseTensor.from_dense(
        generator.standard_normal(partition.sub_shape(1)) + 2,
        keep_zeros=True,
    )
    x2 = SparseTensor.from_dense(
        generator.standard_normal(partition.sub_shape(2)) + 2,
        keep_zeros=True,
    )
    return x1, x2, partition, [2] * 5


def dm2td_payload(run):
    """The byte-level identity of a D-M2TD run: core + every factor."""
    tucker = run.result.tucker
    return (
        tucker.core.tobytes(),
        tuple(factor.tobytes() for factor in tucker.factors),
    )


@pytest.fixture(scope="session")
def dm2td_payload_fn():
    """The payload extractor as a fixture, so subdirectory suites can
    compare runs without importing from conftest modules."""
    return dm2td_payload


@pytest.fixture()
def assert_identical_across_workers():
    """Byte-identical-determinism check: ``check(run_fn)`` calls
    ``run_fn(workers)`` for workers 1/2/4 and asserts every run's
    decomposition payload (core + factors, raw bytes) is identical.
    Returns the common payload so callers can compare against a
    baseline run (e.g. a fault-free one)."""

    def check(run_fn, workers=(1, 2, 4)):
        payloads = {w: dm2td_payload(run_fn(w)) for w in workers}
        baseline = payloads[workers[0]]
        for w in workers[1:]:
            assert payloads[w] == baseline, (
                f"D-M2TD output with {w} workers diverges from "
                f"{workers[0]}-worker run"
            )
        return baseline

    return check


# ----------------------------------------------------------------------
# Chaos harness, shared by tests/faults and tests/campaigns: one seed
# knob for the whole suite, one fault-free baseline payload.
# ----------------------------------------------------------------------

#: One knob for every chaos suite (CI matrix: 0, 1, 2).  Any CI chaos
#: failure replays locally by exporting the same M2TD_CHAOS_SEED.
CHAOS_SEED = int(os.environ.get("M2TD_CHAOS_SEED", "0"))


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    return CHAOS_SEED


@pytest.fixture(scope="session")
def fault_free_payload(dm2td_inputs, dm2td_payload_fn):
    """The ground truth every chaos run must reproduce byte-for-byte:
    one fault-free D-M2TD run on the canonical inputs."""
    from repro.distributed import distributed_m2td

    x1, x2, part, ranks = dm2td_inputs
    return dm2td_payload_fn(distributed_m2td(x1, x2, part, ranks))
