"""Block-store corruption: every bad read is a typed, metered error."""

import numpy as np
import pytest

from repro.exceptions import (
    BlockCorruptionError,
    FaultInjectionError,
    StorageError,
)
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.storage import BlockTensorStore
from repro.tensor import SparseTensor


@pytest.fixture()
def store(tmp_path):
    store = BlockTensorStore(tmp_path / "db")
    dense = np.arange(64, dtype=float).reshape(4, 4, 4) + 1.0
    store.put("t", SparseTensor.from_dense(dense), block_shape=(2, 2, 2))
    return store


class TestInjectedCorruption:
    def test_corrupt_block_read_raises_typed_error(self, store, chaos_seed):
        plan = plan_of(
            [FaultSpec(site="storage.block-read", kind="corrupt",
                       target="t/(0, 0, 0)", times=1)],
            seed=chaos_seed,
        )
        registry = MetricsRegistry()
        with use_metrics(registry), use_injector(FaultInjector(plan)):
            with pytest.raises(BlockCorruptionError) as excinfo:
                store.get_block("t", (0, 0, 0))
        assert excinfo.value.tensor == "t"
        assert excinfo.value.block_id == (0, 0, 0)
        assert registry.counter("storage.block_corruptions").value == 1
        # The corruption is real bytes on disk: it persists after the
        # fault budget is spent, and stays typed.
        with pytest.raises(BlockCorruptionError):
            store.get_block("t", (0, 0, 0))
        # Untouched blocks still read fine.
        block = store.get_block("t", (1, 1, 1))
        assert block.nnz > 0

    def test_injected_read_error_is_fault_typed(self, store, chaos_seed):
        plan = plan_of(
            [FaultSpec(site="storage.block-read", kind="raise",
                       target="t/*", times=1)],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)
        with use_injector(injector):
            with pytest.raises(FaultInjectionError) as excinfo:
                store.get_block("t", (0, 0, 0))
        assert excinfo.value.site == "storage.block-read"
        assert injector.summary()["injected"] == 1


class TestRealCorruption:
    def test_missing_catalogued_block_file(self, store):
        path = store._block_path("t", (0, 0, 0))
        path.unlink()
        with pytest.raises(BlockCorruptionError, match="missing"):
            store.get_block("t", (0, 0, 0))

    def test_truncated_block_file(self, store):
        path = store._block_path("t", (1, 0, 1))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(BlockCorruptionError, match="unreadable"):
            store.get_block("t", (1, 0, 1))

    def test_checksum_catches_silent_tampering(self, store):
        """Rewrite a block with altered values but the stale checksum:
        the zip container stays valid, the content digest does not."""
        path = store._block_path("t", (0, 1, 0))
        with np.load(path) as data:
            contents = {name: data[name] for name in data.files}
        contents["values"] = contents["values"] + 1.0
        np.savez_compressed(path, **contents)
        with pytest.raises(BlockCorruptionError, match="checksum mismatch"):
            store.get_block("t", (0, 1, 0))

    def test_full_get_surfaces_block_corruption(self, store):
        store._block_path("t", (0, 0, 0)).unlink()
        with pytest.raises(BlockCorruptionError):
            store.get("t")


class TestTypedLookupErrors:
    def test_unknown_tensor_is_storage_error_not_keyerror(self, store):
        with pytest.raises(StorageError):
            store.get_block("never-stored", (0, 0, 0))
        with pytest.raises(StorageError):
            store.get("never-stored")

    def test_out_of_grid_block_id_is_storage_error(self, store):
        with pytest.raises(StorageError, match="outside grid"):
            store.get_block("t", (9, 9, 9))

    def test_block_corruption_error_is_storage_error(self):
        assert issubclass(BlockCorruptionError, StorageError)

    def test_block_corruption_error_pickles(self):
        import pickle

        error = BlockCorruptionError("t", (1, 2), "checksum mismatch")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.tensor == "t"
        assert clone.block_id == (1, 2)
        assert clone.reason == "checksum mismatch"

    def test_uncatalogued_empty_block_still_reads_empty(self, tmp_path):
        """A block inside the grid that simply has no cells is not an
        error — only catalogued-but-unreadable blocks are."""
        store = BlockTensorStore(tmp_path / "db2")
        dense = np.zeros((4, 4))
        dense[0, 0] = 1.0  # only block (0, 0) is non-empty
        store.put("s", SparseTensor.from_dense(dense), block_shape=(2, 2))
        empty = store.get_block("s", (1, 1))
        assert empty.nnz == 0
        assert empty.shape == (2, 2)
