"""Chaos-suite fixtures.

The whole suite is parameterised by one environment variable,
``M2TD_CHAOS_SEED`` — CI runs the suite under several seeds, and any
failure is reproducible locally by exporting the same value.  The
seed feeds every :class:`~repro.faults.FaultPlan`, so it shifts which
probabilistic faults fire while keeping each run deterministic.
"""

from __future__ import annotations

import os

import pytest

from repro.distributed import distributed_m2td

#: One knob for the whole suite (CI matrix: 0, 1, 2).
CHAOS_SEED = int(os.environ.get("M2TD_CHAOS_SEED", "0"))


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    return CHAOS_SEED


@pytest.fixture(scope="session")
def fault_free_payload(dm2td_inputs, dm2td_payload_fn):
    """The ground truth every chaos run must reproduce byte-for-byte:
    one fault-free D-M2TD run on the canonical inputs."""
    x1, x2, part, ranks = dm2td_inputs
    return dm2td_payload_fn(distributed_m2td(x1, x2, part, ranks))
