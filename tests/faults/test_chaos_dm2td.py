"""The headline chaos property (paper reproduction meets fault
tolerance): any *single* injected task failure within the retry budget
leaves the D-M2TD decomposition **byte-identical** to a fault-free run
— at 1, 2 and 4 workers — and exhausted budgets surface through the
existing exception family with the fault's provenance attached.

Every plan is seeded from ``M2TD_CHAOS_SEED`` (CI runs a seed matrix),
so a red run here is reproducible locally from one environment
variable.
"""

import pytest

from repro.distributed import LocalMapReduceEngine, distributed_m2td
from repro.exceptions import FaultInjectionError, TaskFailedError
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.runtime import RetryPolicy, Runtime

RETRY_ONCE = RetryPolicy(max_attempts=2, backoff_seconds=0.0)

#: (spec, straggler_seconds) — one fault per case, all within the
#: engine's task_attempts=2 budget.
ENGINE_FAULTS = [
    pytest.param(
        FaultSpec(site="mapreduce.map", kind="raise", target="map-0",
                  times=1),
        None, id="map-raise",
    ),
    pytest.param(
        FaultSpec(site="mapreduce.map", kind="crash-worker",
                  target="map-0", times=1),
        None, id="map-crash",
    ),
    pytest.param(
        FaultSpec(site="mapreduce.map", kind="drop-output",
                  target="map-0", times=1),
        None, id="map-drop-output",
    ),
    pytest.param(
        FaultSpec(site="mapreduce.reduce", kind="raise",
                  target="reduce-1", times=1),
        None, id="reduce-raise",
    ),
    pytest.param(
        FaultSpec(site="mapreduce.map", kind="delay", target="map-0",
                  times=1, delay_seconds=0.25),
        0.05, id="map-straggler-speculation",
    ),
]

RUNTIME_FAULTS = [
    pytest.param(
        FaultSpec(site="runtime.task", kind="raise", target="phase1",
                  times=1),
        id="task-raise",
    ),
    pytest.param(
        FaultSpec(site="runtime.task", kind="crash-worker",
                  target="phase2", times=1),
        id="task-crash",
    ),
    pytest.param(
        FaultSpec(site="runtime.task", kind="delay", target="phase3",
                  times=1, delay_seconds=0.05),
        id="task-delay",
    ),
    pytest.param(
        FaultSpec(site="executor.submit", kind="raise", target="*",
                  times=1),
        id="executor-submit-raise",
    ),
]


@pytest.mark.parametrize("spec,straggler_seconds", ENGINE_FAULTS)
def test_single_engine_fault_output_byte_identical(
    spec, straggler_seconds, dm2td_inputs, fault_free_payload,
    assert_identical_across_workers, chaos_seed,
):
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of([spec], seed=chaos_seed)
    summaries = {}

    def run(workers):
        engine = LocalMapReduceEngine(
            workers, task_attempts=2,
            straggler_seconds=straggler_seconds,
        )
        injector = FaultInjector(plan)  # fresh injector = replay
        with use_injector(injector):
            result = distributed_m2td(x1, x2, part, ranks, engine=engine)
        summaries[workers] = injector.summary()
        return result

    payload = assert_identical_across_workers(run)
    assert payload == fault_free_payload
    for workers, summary in summaries.items():
        assert summary["injected"] >= 1, (
            f"fault never fired with {workers} workers"
        )
        if spec.kind != "delay":  # delays need no recovery
            assert summary["recovered"] >= 1, (
                f"fault not recovered with {workers} workers"
            )


@pytest.mark.parametrize("spec", RUNTIME_FAULTS)
def test_single_runtime_fault_output_byte_identical(
    spec, dm2td_inputs, fault_free_payload,
    assert_identical_across_workers, chaos_seed,
):
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of([spec], seed=chaos_seed)
    summaries = {}

    def run(workers):
        injector = FaultInjector(plan)
        with use_injector(injector):
            with Runtime(workers=workers, default_retry=RETRY_ONCE) as rt:
                result = distributed_m2td(
                    x1, x2, part, ranks, runtime=rt
                )
        summaries[workers] = injector.summary()
        return result

    payload = assert_identical_across_workers(run)
    assert payload == fault_free_payload
    for workers, summary in summaries.items():
        assert summary["injected"] >= 1, (
            f"fault never fired with {workers} workers"
        )


def test_straggler_speculation_is_metered(dm2td_inputs, chaos_seed):
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of(
        [FaultSpec(site="mapreduce.map", kind="delay", target="map-0",
                   times=1, delay_seconds=0.25)],
        seed=chaos_seed,
    )
    engine = LocalMapReduceEngine(2, straggler_seconds=0.05)
    with use_injector(FaultInjector(plan)):
        result = distributed_m2td(x1, x2, part, ranks, engine=engine)
    assert sum(
        stats.speculative_tasks for stats in result.job_stats.values()
    ) >= 1


def test_retried_engine_tasks_are_metered(dm2td_inputs, chaos_seed):
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of(
        [FaultSpec(site="mapreduce.map", kind="raise", target="map-0",
                   times=1)],
        seed=chaos_seed,
    )
    engine = LocalMapReduceEngine(2, task_attempts=2)
    with use_injector(FaultInjector(plan)):
        result = distributed_m2td(x1, x2, part, ranks, engine=engine)
    assert sum(
        stats.retried_tasks for stats in result.job_stats.values()
    ) >= 1


class TestExhaustedBudget:
    def test_engine_budget_exhaustion_keeps_provenance(
        self, dm2td_inputs, chaos_seed
    ):
        """A fault outliving task_attempts propagates through the task
        graph as the existing family (TaskFailedError) with the
        injected fault in its cause chain."""
        x1, x2, part, ranks = dm2td_inputs
        plan = plan_of(
            [FaultSpec(site="mapreduce.map", kind="raise",
                       target="map-0", times=None, message="unhealable")],
            seed=chaos_seed,
        )
        engine = LocalMapReduceEngine(2, task_attempts=2)
        with use_injector(FaultInjector(plan)):
            with pytest.raises(TaskFailedError) as excinfo:
                distributed_m2td(x1, x2, part, ranks, engine=engine)
        cause = excinfo.value.__cause__
        assert isinstance(cause, FaultInjectionError)
        assert cause.site == "mapreduce.map"
        assert cause.target == "map-0"
        assert cause.fault_id == "fault-0"
        assert "unhealable" in str(cause)

    def test_engine_alone_raises_fault_typed_error(self, chaos_seed):
        from repro.distributed import MapReduceJob

        plan = plan_of(
            [FaultSpec(site="mapreduce.reduce", kind="raise",
                       target="*", times=None)],
            seed=chaos_seed,
        )
        job = MapReduceJob(
            name="sum", reduce_fn=lambda k, vs: [(k, sum(vs))]
        )
        engine = LocalMapReduceEngine(task_attempts=3)
        with use_injector(FaultInjector(plan)):
            with pytest.raises(FaultInjectionError):
                engine.run(job, [("k", 1), ("k", 2)])
