"""Serving-layer chaos: corrupted bundles heal, query faults stay typed.

The recovery property under test: a corrupted or missing on-disk
factor bundle is *never served* — the cache's checksum quarantines it,
the loader recomputes from the study's own block store, and the next
answer is correct, with the recovery metered.
"""

import numpy as np
import pytest

from repro.exceptions import FaultInjectionError
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.serving import ServingServer, StudyCatalog
from repro.tensor import SparseTensor


def _make_sparse(shape, seed=0):
    rng = np.random.default_rng(seed)
    n = int(0.5 * np.prod(shape))
    coords = np.unique(
        rng.integers(0, shape, size=(n, len(shape))), axis=0
    )
    return SparseTensor(tuple(shape), coords, rng.standard_normal(coords.shape[0]))


@pytest.fixture()
def root(tmp_path):
    """A catalog root with one study whose bundle is already on disk."""
    catalog = StudyCatalog(tmp_path / "serving")
    catalog.register(
        "study", _make_sparse((6, 5, 4), seed=1), ranks=[3, 3, 3]
    )
    catalog.engine("study")  # computes + persists the bundle
    return tmp_path / "serving"


@pytest.fixture()
def clean_value(root):
    """The fault-free answer every chaos run must reproduce."""
    return StudyCatalog(root).engine("study").point((1, 2, 3))


class TestCorruptBundle:
    def test_corrupt_bundle_is_quarantined_and_recomputed(
        self, root, clean_value, chaos_seed
    ):
        plan = plan_of(
            [FaultSpec(site="serving.factor-load", kind="corrupt",
                       target="study", times=1)],
            seed=chaos_seed,
        )
        registry = MetricsRegistry()
        injector = FaultInjector(plan)
        # fresh catalog: cold hot-tier, cold memory tier, warm disk tier
        catalog = StudyCatalog(root)
        with use_metrics(registry), use_injector(injector):
            value = catalog.engine("study").point((1, 2, 3))
        # the corrupted bundle was never served: the answer is the
        # fault-free one, from a recomputed decomposition
        assert value == pytest.approx(clean_value, abs=1e-12)
        assert registry.counter("cache.corrupt_quarantined").value == 1
        assert registry.counter("serving.bundles_computed").value == 1
        assert registry.counter("faults.injected").value == 1
        assert registry.counter("faults.recovered").value == 1
        assert injector.summary() == {"injected": 1, "recovered": 1}
        # the rotten file was moved aside, not deleted silently
        assert list((root / "bundle-cache").glob("*.corrupt"))

    def test_next_session_reserves_from_healed_cache(
        self, root, clean_value, chaos_seed
    ):
        plan = plan_of(
            [FaultSpec(site="serving.factor-load", kind="corrupt",
                       target="study", times=1)],
            seed=chaos_seed,
        )
        with use_injector(FaultInjector(plan)):
            StudyCatalog(root).engine("study")
        # after healing, a later fault-free session gets a disk hit
        registry = MetricsRegistry()
        with use_metrics(registry):
            value = StudyCatalog(root).engine("study").point((1, 2, 3))
        assert value == pytest.approx(clean_value, abs=1e-12)
        assert registry.counter("serving.bundle_disk_hits").value == 1
        assert registry.counter("serving.bundles_computed").value == 0


class TestMissingBundle:
    def test_missing_bundle_file_recomputes(self, root, clean_value):
        for stale in (root / "bundle-cache").glob("*.npz"):
            stale.unlink()
        registry = MetricsRegistry()
        with use_metrics(registry):
            value = StudyCatalog(root).engine("study").point((1, 2, 3))
        assert value == pytest.approx(clean_value, abs=1e-12)
        assert registry.counter("serving.bundles_computed").value == 1


class TestQueryFaults:
    def test_injected_query_fault_is_typed_and_isolated(
        self, root, clean_value, chaos_seed
    ):
        """A raise fault fails one batch with the fault's provenance;
        the worker survives and the next query is answered."""
        import asyncio

        plan = plan_of(
            [FaultSpec(site="serving.query", kind="raise",
                       target="study/*", times=1)],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)

        async def serve():
            catalog = StudyCatalog(root)
            async with ServingServer(catalog) as server:
                with pytest.raises(FaultInjectionError) as excinfo:
                    await server.point("study", (1, 2, 3))
                assert excinfo.value.site == "serving.query"
                value = await server.point("study", (1, 2, 3))
                return server.stats, value

        with use_injector(injector):
            stats, value = asyncio.run(serve())
        assert value == pytest.approx(clean_value, abs=1e-12)
        assert stats.errors == 1
        assert stats.served == 1
        assert injector.summary()["injected"] == 1

    def test_injected_delay_only_slows(self, root, clean_value, chaos_seed):
        import asyncio

        plan = plan_of(
            [FaultSpec(site="serving.query", kind="delay",
                       target="study/*", times=1, delay_seconds=0.05)],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)

        async def serve():
            catalog = StudyCatalog(root)
            async with ServingServer(catalog) as server:
                return await server.point("study", (1, 2, 3))

        with use_injector(injector):
            value = asyncio.run(serve())
        assert value == pytest.approx(clean_value, abs=1e-12)
        assert injector.summary()["injected"] == 1
