"""Chaos proof for the cross-process worker protocol: any *single*
injected ``worker.*`` fault — including a real ``kill -9`` of a live
worker process — within the supervisor's crash budget leaves the
D-M2TD decomposition **byte-identical** to a fault-free run, at 1, 2,
4 and 8 external workers, with the recovery metered on
``faults.recovered`` and the worker counters.  Exhausted crash budgets
degrade to inline execution with a visible counter — never a hang,
never a silent wrong answer.

Like the rest of the chaos suite, every plan is seeded from
``M2TD_CHAOS_SEED`` so CI failures replay locally.
"""

import pytest

from repro.distributed import LocalMapReduceEngine, distributed_m2td
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.observability import get_metrics

WORKER_COUNTS = (1, 2, 4, 8)

#: One worker-level fault per case.  ``crash-worker`` at worker sites
#: is a REAL SIGKILL of the live worker process.
WORKER_FAULTS = [
    pytest.param(
        FaultSpec(site="worker.spawn", kind="crash-worker",
                  target="worker-0", times=1),
        id="spawn-sigkill",
    ),
    pytest.param(
        FaultSpec(site="worker.spawn", kind="raise", target="worker-0",
                  times=1),
        id="spawn-raise",
    ),
    pytest.param(
        FaultSpec(site="worker.heartbeat", kind="crash-worker",
                  target="worker-0", times=1),
        id="heartbeat-sigkill",
    ),
    pytest.param(
        FaultSpec(site="worker.result", kind="corrupt", target="map-0",
                  times=1),
        id="result-corrupt",
    ),
    pytest.param(
        FaultSpec(site="worker.result", kind="drop-output",
                  target="map-0", times=1),
        id="result-dropped",
    ),
    pytest.param(
        FaultSpec(site="worker.result", kind="delay", target="map-0",
                  times=1, delay_seconds=0.1),
        id="result-delayed",
    ),
]


def run_external(x1, x2, part, ranks, workers, **engine_kwargs):
    engine = LocalMapReduceEngine(
        workers,
        transport="process",
        heartbeat_seconds=0.1,
        lease_seconds=5.0,
        **engine_kwargs,
    )
    try:
        return distributed_m2td(x1, x2, part, ranks, engine=engine)
    finally:
        engine.close()


@pytest.mark.parametrize("spec", WORKER_FAULTS)
def test_single_worker_fault_output_byte_identical(
    spec, dm2td_inputs, fault_free_payload,
    assert_identical_across_workers, chaos_seed,
):
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of([spec], seed=chaos_seed)
    summaries = {}

    def run(workers):
        injector = FaultInjector(plan)  # fresh injector = replay
        with use_injector(injector):
            result = run_external(x1, x2, part, ranks, workers)
        summaries[workers] = injector.summary()
        return result

    payload = assert_identical_across_workers(run, workers=WORKER_COUNTS)
    assert payload == fault_free_payload
    for workers, summary in summaries.items():
        assert summary["injected"] >= 1, (
            f"fault never fired with {workers} external workers"
        )
        if spec.kind != "delay":  # delays need no recovery
            assert summary["recovered"] >= 1, (
                f"fault not recovered with {workers} external workers"
            )


def test_fault_free_external_workers_match_in_process(
    dm2td_inputs, fault_free_payload, assert_identical_across_workers,
    dm2td_payload_fn,
):
    """The supervised engine is byte-identical to the in-process one
    even with no faults at all — transport must never change math."""
    x1, x2, part, ranks = dm2td_inputs
    payload = assert_identical_across_workers(
        lambda workers: run_external(x1, x2, part, ranks, workers),
        workers=WORKER_COUNTS,
    )
    assert payload == fault_free_payload


def test_engine_fault_recovers_on_external_workers(
    dm2td_inputs, fault_free_payload, dm2td_payload_fn, chaos_seed,
):
    """A mapreduce-level fault ships to the worker as a directive,
    raises there with full provenance, and the engine's attempt budget
    absorbs it — same contract as in-process execution."""
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of(
        [FaultSpec(site="mapreduce.map", kind="raise", target="map-0",
                   times=1)],
        seed=chaos_seed,
    )
    injector = FaultInjector(plan)
    with use_injector(injector):
        result = run_external(
            x1, x2, part, ranks, 2, task_attempts=2,
        )
    assert dm2td_payload_fn(result) == fault_free_payload
    assert injector.summary() == {"injected": 1, "recovered": 1}
    assert sum(
        stats.retried_tasks for stats in result.job_stats.values()
    ) >= 1


def test_respawns_and_recoveries_are_metered(dm2td_inputs, chaos_seed):
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of(
        [FaultSpec(site="worker.spawn", kind="crash-worker",
                   target="worker-0", times=1)],
        seed=chaos_seed,
    )
    respawns_before = get_metrics().counter("worker.respawns").value
    with use_injector(FaultInjector(plan)) as injector:
        run_external(x1, x2, part, ranks, 2)
    assert get_metrics().counter("worker.respawns").value > respawns_before
    assert injector.summary()["recovered"] >= 1


def test_exhausted_crash_budget_degrades_never_lies(
    dm2td_inputs, fault_free_payload, dm2td_payload_fn, chaos_seed,
):
    """Spawns failing beyond the crash budget degrade the pool to
    inline execution: the decomposition still comes out byte-identical
    and the fallback is visible on ``worker.inline_fallbacks``."""
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of(
        [FaultSpec(site="worker.spawn", kind="raise", target="worker-*",
                   times=None)],
        seed=chaos_seed,
    )
    before = get_metrics().counter("worker.inline_fallbacks").value
    with use_injector(FaultInjector(plan)):
        result = run_external(
            x1, x2, part, ranks, 2, crash_budget=1,
        )
    assert dm2td_payload_fn(result) == fault_free_payload
    assert get_metrics().counter("worker.inline_fallbacks").value > before
