"""FaultPlan / FaultSpec: validation, serialisation, determinism."""

import pytest

from repro.faults import (
    KINDS,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    plan_of,
)


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultSpec(site="nope", kind="raise")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(site="runtime.task", kind="explode")

    def test_illegal_site_kind_combination(self):
        # Corruption only makes sense where there are bytes on disk.
        with pytest.raises(FaultPlanError, match="not injectable"):
            FaultSpec(site="runtime.task", kind="corrupt")
        with pytest.raises(FaultPlanError, match="not injectable"):
            FaultSpec(site="mapreduce.reduce", kind="drop-output")
        with pytest.raises(FaultPlanError, match="not injectable"):
            FaultSpec(site="cache.read", kind="crash-worker")

    def test_bad_budgets_rejected(self):
        with pytest.raises(FaultPlanError, match="times"):
            FaultSpec(site="runtime.task", kind="raise", times=0)
        with pytest.raises(FaultPlanError, match="after"):
            FaultSpec(site="runtime.task", kind="raise", after=-1)
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(site="runtime.task", kind="raise", probability=1.5)
        with pytest.raises(FaultPlanError, match="delay_seconds"):
            FaultSpec(site="runtime.task", kind="delay", delay_seconds=-1)

    def test_every_kind_has_at_least_one_site(self):
        for kind in KINDS:
            assert any(
                _allowed(site, kind) for site in SITES
            ), f"kind {kind} injectable nowhere"

    def test_target_glob_matching(self):
        spec = FaultSpec(site="mapreduce.map", kind="raise", target="map-*")
        assert spec.matches("map-0")
        assert spec.matches("map-17")
        assert not spec.matches("reduce-0")


def _allowed(site, kind):
    try:
        FaultSpec(site=site, kind=kind)
        return True
    except FaultPlanError:
        return False


class TestPlan:
    def test_round_trip_through_json_file(self, tmp_path):
        plan = plan_of(
            [
                FaultSpec(site="runtime.task", kind="raise",
                          target="phase1", message="boom"),
                FaultSpec(site="cache.read", kind="corrupt", target="*",
                          times=None, probability=0.5),
                FaultSpec(site="mapreduce.map", kind="delay",
                          target="map-0", delay_seconds=0.2, after=1),
            ],
            seed=42,
            name="round-trip",
        )
        path = tmp_path / "plan.json"
        plan.to_file(path)
        loaded = FaultPlan.from_file(path)
        assert loaded == plan
        assert loaded.seed == 42
        assert loaded.name == "round-trip"

    def test_auto_assigned_fault_ids_are_stable(self):
        plan = plan_of(
            [
                FaultSpec(site="runtime.task", kind="raise"),
                FaultSpec(site="cache.read", kind="corrupt"),
            ]
        )
        assert [s.fault_id for s in plan.faults] == ["fault-0", "fault-1"]

    def test_duplicate_fault_ids_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate fault_id"):
            plan_of(
                [
                    FaultSpec(site="runtime.task", kind="raise",
                              fault_id="x"),
                    FaultSpec(site="cache.read", kind="corrupt",
                              fault_id="x"),
                ]
            )

    def test_for_site_partitions_specs(self):
        plan = plan_of(
            [
                FaultSpec(site="runtime.task", kind="raise"),
                FaultSpec(site="runtime.task", kind="delay"),
                FaultSpec(site="cache.read", kind="corrupt"),
            ]
        )
        assert len(plan.for_site("runtime.task")) == 2
        assert len(plan.for_site("cache.read")) == 1
        assert plan.for_site("storage.block-read") == ()
        assert set(plan.sites) == {"runtime.task", "cache.read"}

    def test_bad_file_surfaces_plan_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_file(path)
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_file(tmp_path / "missing.json")

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault spec keys"):
            FaultPlan.from_dict(
                {"faults": [{"site": "runtime.task", "kind": "raise",
                             "typo": 1}]}
            )

    def test_unsupported_version_rejected(self):
        with pytest.raises(FaultPlanError, match="version"):
            FaultPlan.from_dict({"version": 9, "faults": []})


class TestChance:
    def test_probability_bounds_short_circuit(self):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="raise", probability=1.0)]
        )
        assert all(plan.chance(plan.faults[0], n) for n in range(1, 50))
        zero = plan_of(
            [FaultSpec(site="runtime.task", kind="raise", times=None,
                       probability=0.0)]
        )
        assert not any(zero.chance(zero.faults[0], n) for n in range(1, 50))

    def test_deterministic_across_plan_instances(self):
        def draws(seed):
            plan = plan_of(
                [FaultSpec(site="runtime.task", kind="raise", times=None,
                           probability=0.5)],
                seed=seed,
            )
            return [plan.chance(plan.faults[0], n) for n in range(1, 200)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)  # seed actually matters

    def test_with_seed_changes_only_the_seed(self):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="raise")], seed=1
        )
        reseeded = plan.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.faults == plan.faults

    def test_empirical_rate_tracks_probability(self):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="raise", times=None,
                       probability=0.3)],
            seed=0,
        )
        hits = sum(plan.chance(plan.faults[0], n) for n in range(1, 2001))
        assert 0.2 < hits / 2000 < 0.4
