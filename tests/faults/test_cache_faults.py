"""Cache corruption chaos: detected, metered, healed by recompute.

The contract under test: a corrupt (or unreadable, or truncated) disk
cache entry must never poison a run — the read misses, the entry is
quarantined, the task recomputes, and the recompute's ``put`` both
repairs the disk tier and closes the injected fault's recovery record.
"""

import numpy as np

from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.runtime import ResultCache, Runtime, TaskGraph, fingerprint


def counting_graph(calls):
    def expensive():
        calls.append(1)
        return np.arange(8.0)

    graph = TaskGraph()
    graph.add("work", expensive, cache_key=("payload",))
    return graph


class TestInjectedCorruption:
    def test_detected_metered_and_healed_by_recompute(
        self, tmp_path, chaos_seed
    ):
        calls = []
        with Runtime(cache_dir=tmp_path) as rt:
            first = rt.run(counting_graph(calls))["work"]
        assert len(calls) == 1

        plan = plan_of(
            [FaultSpec(site="cache.read", kind="corrupt", target="*",
                       times=1)],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)
        registry = MetricsRegistry()
        with use_metrics(registry), use_injector(injector):
            with Runtime(cache_dir=tmp_path) as rt2:
                second = rt2.run(counting_graph(calls))["work"]
        assert np.array_equal(first, second)
        assert len(calls) == 2  # corrupt entry forced a recompute
        assert rt2.cache.stats.corrupt_quarantined == 1
        assert injector.summary() == {"injected": 1, "recovered": 1}
        assert registry.counter("faults.injected").value == 1
        assert registry.counter("faults.recovered").value == 1
        assert registry.counter("cache.corrupt_quarantined").value == 1
        assert registry.histogram("faults.recovery_seconds").count == 1

        # The recompute's put healed the disk tier: a fresh runtime
        # (no faults) hits cleanly without running the task again.
        with Runtime(cache_dir=tmp_path) as rt3:
            third = rt3.run(counting_graph(calls))["work"]
        assert np.array_equal(first, third)
        assert len(calls) == 2

    def test_injected_read_error_becomes_a_miss(self, tmp_path, chaos_seed):
        key = fingerprint("truth", ("sim", 1))
        value = np.arange(16.0)
        ResultCache(directory=tmp_path).put(key, value)

        plan = plan_of(
            [FaultSpec(site="cache.read", kind="raise", target="*",
                       times=1)],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)
        fresh = ResultCache(directory=tmp_path)
        with use_injector(injector):
            hit, _ = fresh.get(key)
            assert not hit  # the faulted read is a miss, not a crash
            fresh.put(key, value)  # "recompute" heals the fault
        assert injector.summary() == {"injected": 1, "recovered": 1}
        # The file itself was never corrupted; it still reads cleanly.
        hit, restored = ResultCache(directory=tmp_path).get(key)
        assert hit and np.array_equal(restored, value)


class TestRealCorruption:
    def test_truncated_write_triggers_recompute(self, tmp_path):
        """Regression: a torn write used to raise on the next read."""
        key = fingerprint("truth", ("sim", 2))
        value = np.arange(32.0)
        ResultCache(directory=tmp_path).put(key, value)
        path = tmp_path / f"{key}.npz"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # simulated torn write

        fresh = ResultCache(directory=tmp_path)
        hit, _ = fresh.get(key)
        assert not hit
        assert fresh.stats.corrupt_quarantined == 1
        assert (tmp_path / f"{key}.corrupt").exists()
        assert not path.exists()  # moved aside, not left to re-fail

        # Recompute + put restores a good entry under the same key.
        fresh.put(key, value)
        hit, restored = ResultCache(directory=tmp_path).get(key)
        assert hit and np.array_equal(restored, value)

    def test_checksum_catches_silent_payload_tampering(self, tmp_path):
        """Bit-rot that keeps the zip container valid must still be
        caught — by the content checksum, not the CRC."""
        key = fingerprint("truth", ("sim", 3))
        ResultCache(directory=tmp_path).put(key, np.arange(4.0))
        path = tmp_path / f"{key}.npz"
        with np.load(path, allow_pickle=False) as data:
            contents = {name: data[name] for name in data.files}
        [array_name] = [n for n in contents if not n.startswith("__")]
        contents[array_name] = contents[array_name] + 1.0
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **contents)  # stale __checksum__

        fresh = ResultCache(directory=tmp_path)
        hit, _ = fresh.get(key)
        assert not hit
        assert fresh.stats.corrupt_quarantined == 1

    def test_temp_and_quarantined_files_invisible_to_disk_keys(
        self, tmp_path
    ):
        cache = ResultCache(directory=tmp_path)
        key = fingerprint("truth", ("sim", 4))
        cache.put(key, np.arange(4.0))
        (tmp_path / ".stray.12345.67890.tmp.npz").write_bytes(b"partial")
        assert cache.disk_keys() == [key]
