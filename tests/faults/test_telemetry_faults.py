"""Chaos proof for the telemetry channel: faults at the
``observability.telemetry`` site cost *visibility*, never the task.

A dropped or corrupted snapshot degrades to supervisor-side-only
dispatch spans with a ``worker.telemetry_dropped`` meter and a
recovery record — while the decomposition stays byte-identical to a
fault-free run.  The channel is one-way: mangling telemetry must not
touch the separately-checksummed result payload.
"""

import pytest

from repro.distributed import LocalMapReduceEngine, distributed_m2td
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.observability import (
    EventLog,
    MetricsRegistry,
    Tracer,
    use_event_log,
    use_metrics,
    use_tracer,
)

TELEMETRY_FAULTS = [
    pytest.param(
        FaultSpec(site="observability.telemetry", kind="drop-output",
                  target="map-0", times=1),
        id="snapshot-dropped",
    ),
    pytest.param(
        FaultSpec(site="observability.telemetry", kind="corrupt",
                  target="map-0", times=1),
        id="snapshot-corrupted",
    ),
    pytest.param(
        FaultSpec(site="observability.telemetry", kind="raise",
                  target="map-0", times=1),
        id="capture-raises",
    ),
]


def traced_chaos_run(dm2td_inputs, plan, workers=2):
    x1, x2, part, ranks = dm2td_inputs
    tracer, registry = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry), use_event_log() as events:
        with use_injector(FaultInjector(plan)) as injector:
            engine = LocalMapReduceEngine(
                workers,
                transport="process",
                heartbeat_seconds=0.1,
                lease_seconds=5.0,
            )
            try:
                run = distributed_m2td(x1, x2, part, ranks, engine=engine)
            finally:
                engine.close()
            summary = injector.summary()
    return run, tracer, registry, events, summary


@pytest.mark.parametrize("spec", TELEMETRY_FAULTS)
def test_telemetry_fault_costs_visibility_not_the_answer(
    spec, dm2td_inputs, fault_free_payload, dm2td_payload_fn, chaos_seed,
):
    plan = plan_of([spec], seed=chaos_seed)
    run, tracer, registry, events, summary = traced_chaos_run(
        dm2td_inputs, plan
    )
    # The decomposition never noticed.
    assert dm2td_payload_fn(run) == fault_free_payload
    # The loss was injected, metered, and accounted as recovered.
    assert summary["injected"] >= 1
    assert summary["recovered"] >= 1
    state = registry.as_dict()
    assert state["worker.telemetry_dropped"]["value"] >= 1.0
    assert state["faults.recovered"]["value"] >= 1.0
    assert events.records(event="worker.telemetry_dropped")
    # Supervisor-side dispatch spans survive; only the faulted task's
    # worker-side subtree is missing.
    dispatches = {
        span.name: span for span in tracer.iter_spans()
        if span.name.startswith("dispatch:")
    }
    assert dispatches, "supervisor-side dispatch spans must survive"
    merged = [d for d in dispatches.values() if d.children]
    assert merged, "unfaulted tasks still ship telemetry"


def test_all_snapshots_dropped_still_converges(
    dm2td_inputs, fault_free_payload, dm2td_payload_fn, chaos_seed,
):
    plan = plan_of(
        [FaultSpec(site="observability.telemetry", kind="drop-output",
                   target="*", times=None)],
        seed=chaos_seed,
    )
    run, tracer, registry, _, summary = traced_chaos_run(dm2td_inputs, plan)
    assert dm2td_payload_fn(run) == fault_free_payload
    dropped = registry.as_dict()["worker.telemetry_dropped"]["value"]
    assert dropped == summary["injected"] >= 1
    # Every dispatch span is bare: full visibility loss, zero damage.
    for span in tracer.iter_spans():
        if span.name.startswith("dispatch:"):
            assert span.children == []


def test_untraced_runs_never_arm_the_site(dm2td_inputs, chaos_seed):
    """With tracing off nothing is collected, so a telemetry fault has
    nothing to hit — the plan must not fire at all."""
    x1, x2, part, ranks = dm2td_inputs
    plan = plan_of(
        [FaultSpec(site="observability.telemetry", kind="drop-output",
                   target="*", times=None)],
        seed=chaos_seed,
    )
    with use_metrics(MetricsRegistry()) as registry:
        with use_injector(FaultInjector(plan)) as injector:
            engine = LocalMapReduceEngine(
                2, transport="process", heartbeat_seconds=0.1
            )
            try:
                distributed_m2td(x1, x2, part, ranks, engine=engine)
            finally:
                engine.close()
            assert injector.summary()["injected"] == 0
    assert "worker.telemetry_dropped" not in registry.names()
