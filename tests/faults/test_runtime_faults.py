"""Faults through the task-graph runtime: retry heals, exhaustion
surfaces the fault's provenance through the existing exception family.
"""

import pytest

from repro.exceptions import (
    FaultInjectionError,
    RetryExhaustedError,
    TaskFailedError,
    WorkerCrashError,
)
from repro.faults import FaultInjector, FaultSpec, plan_of, use_injector
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.runtime import Runtime, RetryPolicy, TaskGraph, output


def two_task_graph():
    graph = TaskGraph()
    graph.add("first", lambda: 21)
    graph.add("second", lambda x: x * 2, output("first"))
    return graph


RETRY_ONCE = RetryPolicy(max_attempts=2, backoff_seconds=0.0)


class TestRecoveryWithinBudget:
    @pytest.mark.parametrize("kind", ["raise", "crash-worker"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_single_fault_is_retried_and_metered(
        self, kind, workers, chaos_seed
    ):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind=kind, target="first",
                       times=1)],
            seed=chaos_seed,
        )
        registry = MetricsRegistry()
        injector = FaultInjector(plan)
        with use_metrics(registry), use_injector(injector):
            with Runtime(workers=workers, default_retry=RETRY_ONCE) as rt:
                outcome = rt.run(two_task_graph())
        assert outcome["second"] == 42
        assert injector.summary() == {"injected": 1, "recovered": 1}
        assert registry.counter("faults.injected").value == 1
        assert registry.counter("faults.recovered").value == 1
        assert registry.histogram("faults.recovery_seconds").count == 1

    def test_delay_fault_changes_timing_not_results(self, chaos_seed):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="delay", target="first",
                       delay_seconds=0.05)],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)
        with use_injector(injector):
            with Runtime(workers=2) as rt:
                outcome = rt.run(two_task_graph())
        assert outcome["second"] == 42
        assert injector.summary() == {"injected": 1, "recovered": 0}

    def test_executor_submit_site(self, chaos_seed):
        plan = plan_of(
            [FaultSpec(site="executor.submit", kind="raise", target="*",
                       times=1)],
            seed=chaos_seed,
        )
        injector = FaultInjector(plan)
        with use_injector(injector):
            with Runtime(workers=2, default_retry=RETRY_ONCE) as rt:
                outcome = rt.run(two_task_graph())
        assert outcome["second"] == 42
        assert injector.summary()["injected"] == 1


class TestExhaustion:
    def test_exhausted_retries_carry_fault_provenance(self, chaos_seed):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="raise", target="first",
                       times=None, message="persistent chaos")],
            seed=chaos_seed,
        )
        with use_injector(FaultInjector(plan)):
            with Runtime(workers=1, default_retry=RETRY_ONCE) as rt:
                with pytest.raises(RetryExhaustedError) as excinfo:
                    rt.run(two_task_graph())
        cause = excinfo.value.__cause__
        assert isinstance(cause, FaultInjectionError)
        assert cause.site == "runtime.task"
        assert cause.target == "first"
        assert cause.fault_id == "fault-0"
        assert "persistent chaos" in str(excinfo.value)

    def test_crash_without_retry_budget_fails_task(self, chaos_seed):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="crash-worker",
                       target="first")],
            seed=chaos_seed,
        )
        with use_injector(FaultInjector(plan)):
            with Runtime(workers=1) as rt:  # default: no retries
                with pytest.raises(TaskFailedError) as excinfo:
                    rt.run(two_task_graph())
        assert isinstance(excinfo.value.__cause__, WorkerCrashError)

    def test_worker_crash_is_retryable_like_any_failure(self, chaos_seed):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="crash-worker",
                       target="first", times=2)],
            seed=chaos_seed,
        )
        policy = RetryPolicy(max_attempts=3, backoff_seconds=0.0)
        injector = FaultInjector(plan)
        with use_injector(injector):
            with Runtime(workers=1, default_retry=policy) as rt:
                outcome = rt.run(two_task_graph())
        assert outcome["second"] == 42
        assert injector.summary() == {"injected": 2, "recovered": 1}
