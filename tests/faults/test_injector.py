"""FaultInjector semantics: decisions, effects, accounting."""

import pytest

from repro.exceptions import FaultInjectionError, WorkerCrashError
from repro.faults import (
    NULL_INJECTOR,
    FaultInjector,
    FaultSpec,
    get_injector,
    plan_of,
    use_injector,
)
from repro.observability.metrics import MetricsRegistry, use_metrics


def injector_of(*specs, seed=0):
    return FaultInjector(plan_of(specs, seed=seed))


class TestDecide:
    def test_times_budget_is_consumed(self):
        injector = injector_of(
            FaultSpec(site="runtime.task", kind="raise", target="t",
                      times=2)
        )
        assert injector.decide("runtime.task", "t") is not None
        assert injector.decide("runtime.task", "t") is not None
        assert injector.decide("runtime.task", "t") is None

    def test_after_skips_leading_events(self):
        injector = injector_of(
            FaultSpec(site="runtime.task", kind="raise", target="t",
                      after=2, times=1)
        )
        assert injector.decide("runtime.task", "t") is None
        assert injector.decide("runtime.task", "t") is None
        assert injector.decide("runtime.task", "t") is not None
        assert injector.decide("runtime.task", "t") is None

    def test_non_matching_target_untouched(self):
        injector = injector_of(
            FaultSpec(site="runtime.task", kind="raise", target="other")
        )
        assert injector.decide("runtime.task", "t") is None
        assert injector.records == []

    def test_same_plan_same_seed_fires_identically(self):
        plan = plan_of(
            [FaultSpec(site="runtime.task", kind="raise", target="*",
                       times=None, probability=0.4)],
            seed=5,
        )

        def firing_pattern():
            injector = FaultInjector(plan)
            return [
                injector.decide("runtime.task", f"task-{n}") is not None
                for n in range(100)
            ]

        assert firing_pattern() == firing_pattern()

    def test_injected_counter_ticks(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            injector = injector_of(
                FaultSpec(site="runtime.task", kind="raise", target="t")
            )
            injector.decide("runtime.task", "t")
        assert registry.counter("faults.injected").value == 1


class TestFire:
    def test_raise_kind(self):
        injector = injector_of(
            FaultSpec(site="mapreduce.map", kind="raise", target="map-0",
                      message="chaos")
        )
        with pytest.raises(FaultInjectionError, match="chaos") as excinfo:
            injector.fire("mapreduce.map", "map-0")
        assert excinfo.value.site == "mapreduce.map"
        assert excinfo.value.target == "map-0"
        assert excinfo.value.fault_id == "fault-0"

    def test_crash_kind_is_distinct_type(self):
        injector = injector_of(
            FaultSpec(site="mapreduce.map", kind="crash-worker",
                      target="map-0")
        )
        with pytest.raises(WorkerCrashError):
            injector.fire("mapreduce.map", "map-0")

    def test_corrupt_kind_flips_file_bytes(self, tmp_path):
        path = tmp_path / "payload.bin"
        original = bytes(range(64))
        path.write_bytes(original)
        injector = injector_of(
            FaultSpec(site="cache.read", kind="corrupt", target="k")
        )
        assert injector.fire("cache.read", "k", path=path) is not None
        assert path.read_bytes() != original
        assert len(path.read_bytes()) == len(original)

    def test_corrupt_kind_tolerates_missing_file(self, tmp_path):
        injector = injector_of(
            FaultSpec(site="cache.read", kind="corrupt", target="k")
        )
        decision = injector.fire(
            "cache.read", "k", path=tmp_path / "nope.bin"
        )
        assert decision is not None  # decided, nothing to corrupt

    def test_drop_output_returned_to_caller(self):
        injector = injector_of(
            FaultSpec(site="mapreduce.map", kind="drop-output",
                      target="map-0")
        )
        decision = injector.fire("mapreduce.map", "map-0")
        assert decision is not None and decision.kind == "drop-output"


class TestWrapCallable:
    def test_effect_fires_inside_the_callable(self):
        injector = injector_of(
            FaultSpec(site="runtime.task", kind="raise", target="t")
        )
        wrapped = injector.wrap_callable("runtime.task", "t", lambda: 1)
        # Decision already taken; the wrapper itself raises when run.
        with pytest.raises(FaultInjectionError):
            wrapped()

    def test_no_decision_returns_fn_unchanged(self):
        injector = injector_of(
            FaultSpec(site="runtime.task", kind="raise", target="other")
        )
        fn = lambda: 1  # noqa: E731
        assert injector.wrap_callable("runtime.task", "t", fn) is fn

    def test_wrapped_callable_survives_pickling(self):
        import pickle

        injector = injector_of(
            FaultSpec(site="executor.submit", kind="crash-worker",
                      target="process")
        )
        wrapped = injector.wrap_callable("executor.submit", "process", abs)
        clone = pickle.loads(pickle.dumps(wrapped))
        with pytest.raises(WorkerCrashError):
            clone(-3)


class TestRecovery:
    def test_note_recovery_meters_counter_and_histogram(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            injector = injector_of(
                FaultSpec(site="runtime.task", kind="raise", target="t")
            )
            injector.decide("runtime.task", "t")
            injector.note_recovery("runtime.task", "t")
        assert registry.counter("faults.recovered").value == 1
        assert registry.histogram("faults.recovery_seconds").count == 1
        record = injector.records[0]
        assert record.recovered
        assert record.recovery_seconds is not None
        assert injector.summary() == {"injected": 1, "recovered": 1}

    def test_note_recovery_without_pending_fault_is_noop(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            injector = injector_of(
                FaultSpec(site="runtime.task", kind="raise", target="t")
            )
            injector.note_recovery("runtime.task", "t")
        assert registry.counter("faults.recovered").value == 0

    def test_delay_faults_never_pend_recovery(self):
        injector = injector_of(
            FaultSpec(site="runtime.task", kind="delay", target="t",
                      delay_seconds=0.0)
        )
        injector.fire("runtime.task", "t")
        injector.note_recovery("runtime.task", "t")
        assert injector.summary() == {"injected": 1, "recovered": 0}


class TestActiveInjector:
    def test_default_is_null_injector(self):
        assert get_injector() is NULL_INJECTOR
        assert not get_injector().enabled

    def test_use_injector_scopes_installation(self):
        injector = injector_of(
            FaultSpec(site="runtime.task", kind="raise", target="t")
        )
        with use_injector(injector) as active:
            assert active is injector
            assert get_injector() is injector
        assert get_injector() is NULL_INJECTOR

    def test_null_injector_is_inert(self):
        assert NULL_INJECTOR.decide("runtime.task", "t") is None
        assert NULL_INJECTOR.fire("runtime.task", "t") is None
        fn = lambda: 1  # noqa: E731
        assert NULL_INJECTOR.wrap_callable("runtime.task", "t", fn) is fn
        assert NULL_INJECTOR.summary() == {"injected": 0, "recovered": 0}
        assert NULL_INJECTOR.records == []
