"""Physics checks: the pendulum equations of motion are right."""

import numpy as np
import pytest

from repro.simulation import (
    DoublePendulum,
    TriplePendulum,
    chain_pendulum_derivative,
    rk4,
)


class TestDoublePendulumPhysics:
    def test_energy_conserved(self):
        system = DoublePendulum()
        params = {"phi1": 0.4, "m1": 1.3, "phi2": 0.9, "m2": 0.7}
        _t, states = rk4(
            system.derivative(params),
            system.initial_state(params),
            0.0,
            5.0,
            20_000,
        )
        energies = [system.total_energy(params, s) for s in states[::1000]]
        assert np.allclose(energies, energies[0], atol=1e-5)

    def test_small_angle_frequency(self):
        """In the small-angle, equal-mass limit the slow normal mode of
        the equal-length double pendulum has frequency
        ``sqrt((2 - sqrt(2)) * g / L)``."""
        system = DoublePendulum(gravity=9.81, length=1.0)
        # Excite (approximately) the in-phase normal mode.
        amplitude = 0.02
        params = {
            "phi1": amplitude,
            "m1": 1.0,
            "phi2": amplitude * np.sqrt(2),
            "m2": 1.0,
        }
        omega = np.sqrt((2 - np.sqrt(2)) * 9.81)
        period = 2 * np.pi / omega
        _t, states = rk4(
            system.derivative(params),
            system.initial_state(params),
            0.0,
            period,
            4000,
        )
        # After one slow-mode period the state returns near the start.
        assert np.allclose(states[-1][0], amplitude, atol=amplitude * 0.1)

    def test_matches_chain_formulation(self):
        """The closed-form double-pendulum RHS must agree with the
        generic n-link chain formulation (friction = 0)."""
        system = DoublePendulum()
        params = {"phi1": 0.8, "m1": 2.0, "phi2": 1.1, "m2": 0.6}
        closed_form = system.derivative(params)
        chain = chain_pendulum_derivative(
            masses=[2.0, 0.6], length=1.0, gravity=9.81, friction=0.0
        )
        state = np.array([0.8, 0.3, 1.1, -0.2])
        chain_state = np.array([0.8, 1.1, 0.3, -0.2])  # (thetas, omegas)
        ours = closed_form(0.0, state)
        theirs = chain(0.0, chain_state)
        assert ours[1] == pytest.approx(theirs[2], rel=1e-10)  # alpha1
        assert ours[3] == pytest.approx(theirs[3], rel=1e-10)  # alpha2


class TestTriplePendulumPhysics:
    def test_friction_dissipates(self):
        """With friction the joint speeds decay; without, they do not."""
        system = TriplePendulum()
        system.t_end = 15.0  # long enough for the damping to bite
        system.n_steps = 600
        base = {"phi1": 0.5, "phi2": 0.5, "phi3": 0.5}
        frictionless = system.simulate({**base, "f": 0.0})
        damped = system.simulate({**base, "f": 1.0})
        speed = lambda states: np.abs(states[:, 3:]).sum(axis=1)
        assert speed(damped)[-1] < 0.2 * speed(frictionless).max()

    def test_equilibrium_is_fixed_point(self):
        system = TriplePendulum()
        deriv = system.derivative({"f": 0.3})
        assert np.allclose(deriv(0.0, np.zeros(6)), 0.0)

    def test_small_angle_stays_bounded(self):
        system = TriplePendulum()
        states = system.simulate(
            {"phi1": 0.05, "phi2": 0.05, "phi3": 0.05, "f": 0.0}
        )
        assert np.abs(states[:, :3]).max() < 0.2


class TestChainDerivative:
    def test_single_pendulum_reduces_to_textbook(self):
        deriv = chain_pendulum_derivative([1.0], 1.0, 9.81, 0.0)
        theta = 0.3
        out = deriv(0.0, np.array([theta, 0.0]))
        assert out[1] == pytest.approx(-9.81 * np.sin(theta))

    def test_friction_enters_linearly(self):
        state = np.array([0.4, 0.2, 0.0, 1.0, -0.5, 0.3])
        d0 = chain_pendulum_derivative([1.0] * 3, 1.0, 9.81, 0.0)(0.0, state)
        d1 = chain_pendulum_derivative([1.0] * 3, 1.0, 9.81, 0.5)(0.0, state)
        d2 = chain_pendulum_derivative([1.0] * 3, 1.0, 9.81, 1.0)(0.0, state)
        assert np.allclose(d2 - d1, d1 - d0, atol=1e-10)
