"""ParameterSpace: mode geometry and index <-> value mapping."""

import numpy as np
import pytest

from repro.exceptions import ModeError, SimulationError
from repro.simulation import DoublePendulum, ParameterSpace


@pytest.fixture()
def space():
    return ParameterSpace(DoublePendulum(), resolution=5)


class TestGeometry:
    def test_shape(self, space):
        assert space.shape == (5, 5, 5, 5, 5)
        assert space.n_modes == 5
        assert space.time_mode == 4

    def test_separate_time_resolution(self):
        space = ParameterSpace(DoublePendulum(), 5, time_resolution=7)
        assert space.shape == (5, 5, 5, 5, 7)

    def test_mode_names(self, space):
        assert space.mode_names == ("phi1", "m1", "phi2", "m2", "t")

    def test_mode_index(self, space):
        assert space.mode_index("m2") == 3
        assert space.mode_index("t") == 4
        with pytest.raises(ModeError):
            space.mode_index("gravity")

    def test_counts(self, space):
        assert space.n_simulations_full == 5**4
        assert space.n_cells_full == 5**5

    def test_rejects_tiny_resolution(self):
        with pytest.raises(SimulationError):
            ParameterSpace(DoublePendulum(), resolution=1)
        with pytest.raises(SimulationError):
            ParameterSpace(DoublePendulum(), 5, time_resolution=1)


class TestMapping:
    def test_grid(self, space):
        grid = space.grid(0)
        param = space.system.parameters[0]
        assert grid[0] == param.low
        assert grid[-1] == param.high

    def test_grid_rejects_time_mode(self, space):
        with pytest.raises(ModeError):
            space.grid(4)

    def test_time_indices_span_trajectory(self, space):
        assert space.time_indices[0] == 0
        assert space.time_indices[-1] == space.system.n_steps

    def test_params_from_indices(self, space):
        params = space.params_from_indices([0, 4, 2, 1])
        assert params["phi1"] == pytest.approx(space.grid(0)[0])
        assert params["m1"] == pytest.approx(space.grid(1)[4])

    def test_params_from_indices_rejects_length(self, space):
        with pytest.raises(ModeError):
            space.params_from_indices([0, 1])

    def test_combinations_count(self, space):
        combos = list(space.param_index_combinations())
        assert len(combos) == 5**4
        assert combos[0] == (0, 0, 0, 0)

    def test_batch_values_match_scalar(self, space):
        indices = np.array([[0, 1, 2, 3], [4, 4, 4, 4]])
        batch = space.batch_param_values(indices)
        for row in range(2):
            scalar = space.params_from_indices(indices[row])
            for name in scalar:
                assert batch[name][row] == pytest.approx(scalar[name])

    def test_batch_values_rejects_bad_shape(self, space):
        with pytest.raises(ModeError):
            space.batch_param_values(np.zeros((3, 2), dtype=int))
