"""The 5-parameter pendulum (gravity as a simulation parameter)."""

import numpy as np
import pytest

from repro.simulation import (
    DoublePendulum,
    DoublePendulumG,
    ParameterSpace,
    make_system,
)


class TestDoublePendulumG:
    def test_five_parameters(self):
        system = DoublePendulumG()
        assert system.n_parameters == 5
        assert system.parameter_names == ("phi1", "m1", "phi2", "m2", "g")

    def test_registered(self):
        assert make_system("double_pendulum_g").name == "double_pendulum_g"

    def test_six_mode_space(self):
        space = ParameterSpace(DoublePendulumG(), resolution=4)
        assert space.n_modes == 6
        assert space.shape == (4,) * 6

    def test_matches_fixed_gravity_parent(self):
        """At g = 9.81 the 5-parameter system must reproduce the
        4-parameter system's trajectories exactly."""
        parent = DoublePendulum(gravity=9.81)
        child = DoublePendulumG()
        params4 = {"phi1": 0.7, "m1": 1.2, "phi2": 1.1, "m2": 0.8}
        params5 = {**params4, "g": 9.81}
        assert np.allclose(
            parent.simulate(params4), child.simulate(params5)
        )

    def test_gravity_changes_dynamics(self):
        system = DoublePendulumG()
        base = {"phi1": 0.7, "m1": 1.2, "phi2": 1.1, "m2": 0.8}
        low_g = system.simulate({**base, "g": 3.0})
        high_g = system.simulate({**base, "g": 15.0})
        assert not np.allclose(low_g, high_g)
        # Higher gravity -> faster oscillation -> earlier zero crossing
        first_cross = lambda states: np.argmax(np.diff(np.sign(states[:, 0])) != 0)
        assert first_cross(high_g) < first_cross(low_g)

    def test_batch_matches_scalar(self):
        system = DoublePendulumG()
        base = {"phi1": 0.7, "m1": 1.2, "phi2": 1.1, "m2": 0.8, "g": 6.0}
        other = {k: v * 1.1 for k, v in base.items()}
        params = {k: np.array([base[k], other[k]]) for k in base}
        deriv = system.batch_derivative(params)
        y0 = system.batch_initial_state(params)
        batched = deriv(0.0, y0)
        for i, p in enumerate([base, other]):
            scalar = system.derivative(p)(0.0, system.initial_state(p))
            assert np.allclose(batched[i], scalar, atol=1e-12)

    def test_k2_partition(self):
        from repro.sampling import PFPartition

        space = ParameterSpace(DoublePendulumG(), resolution=4)
        part = PFPartition.for_space(space, pivot=("g", "t"))
        assert part.k == 2
        assert part.pivot_modes == (4, 5)
        assert part.s1_free == (0, 1)
        assert part.s2_free == (2, 3)

    def test_duplicate_pivots_rejected(self):
        from repro.exceptions import PartitionError
        from repro.sampling import PFPartition

        space = ParameterSpace(DoublePendulumG(), resolution=4)
        with pytest.raises(PartitionError):
            PFPartition.for_space(space, pivot=("t", "t"))
