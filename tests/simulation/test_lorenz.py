"""Lorenz system checks."""

import numpy as np
import pytest

from repro.simulation import Lorenz, rk45


class TestLorenz:
    def test_fixed_point_origin_branch(self):
        """For rho < 1 the origin attracts; trajectories decay."""
        system = Lorenz()
        params = {"z0": 1.0, "sigma": 10.0, "beta": 8.0 / 3.0, "rho": 0.5}
        deriv = system.derivative(params)
        _t, states = rk45(deriv, system.initial_state(params), 0.0, 30.0)
        assert np.linalg.norm(states[-1]) < 1e-3

    def test_nontrivial_fixed_point(self):
        """C+ = (sqrt(beta(rho-1)), sqrt(beta(rho-1)), rho-1) is an
        equilibrium of the flow."""
        system = Lorenz()
        sigma, beta, rho = 10.0, 8.0 / 3.0, 28.0
        deriv = system.derivative(
            {"z0": 0.0, "sigma": sigma, "beta": beta, "rho": rho}
        )
        c = np.sqrt(beta * (rho - 1))
        assert np.allclose(deriv(0.0, np.array([c, c, rho - 1])), 0.0, atol=1e-12)

    def test_sensitive_dependence(self):
        """Chaos: nearby initial conditions diverge over time."""
        system = Lorenz()
        system.t_end = 15.0  # the default horizon is pre-divergence
        system.n_steps = 3000
        base = {"z0": 15.0, "sigma": 10.0, "beta": 8.0 / 3.0, "rho": 28.0}
        a = system.simulate(base)
        b = system.simulate({**base, "z0": 15.0001})
        start_gap = np.linalg.norm(a[0] - b[0])
        end_gap = np.linalg.norm(a[-1] - b[-1])
        assert end_gap > 10 * start_gap

    def test_initial_state_uses_z0(self):
        system = Lorenz(x0=2.0, y0=3.0)
        state = system.initial_state({"z0": 7.0})
        assert np.allclose(state, [2.0, 3.0, 7.0])

    def test_batch_derivative_vectorizes_params(self):
        system = Lorenz()
        params = {
            "z0": np.array([1.0, 2.0]),
            "sigma": np.array([10.0, 5.0]),
            "beta": np.array([2.0, 3.0]),
            "rho": np.array([28.0, 20.0]),
        }
        deriv = system.batch_derivative(params)
        states = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        out = deriv(0.0, states)
        assert out[0, 0] == pytest.approx(10.0 * (2.0 - 1.0))
        assert out[1, 0] == pytest.approx(5.0 * (5.0 - 4.0))
        assert out[1, 2] == pytest.approx(4.0 * 5.0 - 3.0 * 6.0)
