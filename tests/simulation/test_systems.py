"""DynamicalSystem base behaviour and ParameterDef."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation import (
    DoublePendulum,
    Lorenz,
    ParameterDef,
    TriplePendulum,
    make_system,
)


class TestParameterDef:
    def test_grid(self):
        param = ParameterDef("x", low=0.0, high=1.0, default=0.5)
        grid = param.grid(5)
        assert np.allclose(grid, [0, 0.25, 0.5, 0.75, 1.0])

    def test_grid_resolution_one_is_default(self):
        param = ParameterDef("x", low=0.0, high=1.0, default=0.3)
        assert np.allclose(param.grid(1), [0.3])

    def test_rejects_bad_range(self):
        with pytest.raises(SimulationError):
            ParameterDef("x", low=1.0, high=0.0, default=0.5)

    def test_rejects_default_outside_range(self):
        with pytest.raises(SimulationError):
            ParameterDef("x", low=0.0, high=1.0, default=2.0)

    def test_rejects_bad_resolution(self):
        param = ParameterDef("x", low=0.0, high=1.0, default=0.5)
        with pytest.raises(SimulationError):
            param.grid(0)


class TestSystemRegistry:
    def test_make_system(self):
        assert make_system("lorenz").name == "lorenz"
        assert make_system("double_pendulum").n_parameters == 4

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            make_system("quintuple_pendulum")


@pytest.mark.parametrize(
    "system_cls", [DoublePendulum, TriplePendulum, Lorenz]
)
class TestSystemInterface:
    def test_four_parameters(self, system_cls):
        system = system_cls()
        assert system.n_parameters == 4
        assert len(system.parameter_names) == 4

    def test_default_params_simulate(self, system_cls):
        system = system_cls()
        states = system.simulate(system.default_params())
        assert states.shape[0] == system.n_steps + 1
        assert np.isfinite(states).all()

    def test_resolve(self, system_cls):
        system = system_cls()
        values = [p.default for p in system.parameters]
        params = system.resolve(values)
        assert set(params) == set(system.parameter_names)

    def test_resolve_rejects_wrong_length(self, system_cls):
        with pytest.raises(SimulationError):
            system_cls().resolve([1.0])

    def test_simulate_rejects_missing_params(self, system_cls):
        system = system_cls()
        with pytest.raises(SimulationError):
            system.simulate({})

    def test_time_grid(self, system_cls):
        system = system_cls()
        grid = system.time_grid(5)
        assert grid[0] == 0
        assert grid[-1] == system.n_steps
        assert (np.diff(grid) > 0).all()

    def test_batch_matches_scalar(self, system_cls):
        system = system_cls()
        defaults = system.default_params()
        shifted = {
            k: v * 1.05 if v != 0 else 0.01 for k, v in defaults.items()
        }
        params = {
            k: np.array([defaults[k], shifted[k]]) for k in defaults
        }
        deriv = system.batch_derivative(params)
        y0 = system.batch_initial_state(params)
        batched = deriv(0.0, y0)
        for i, p in enumerate([defaults, shifted]):
            scalar = system.derivative(p)(0.0, system.initial_state(p))
            assert np.allclose(batched[i], scalar, atol=1e-12)


class TestBaseClassFallbacks:
    def test_default_batch_methods_loop(self):
        """The ABC's fallback batch implementations must agree with the
        vectorized overrides."""
        system = DoublePendulum()
        defaults = system.default_params()
        params = {k: np.array([v, v * 1.1]) for k, v in defaults.items()}
        from repro.simulation.systems import DynamicalSystem

        fallback_y0 = DynamicalSystem.batch_initial_state(system, params)
        assert np.allclose(fallback_y0, system.batch_initial_state(params))
        fallback = DynamicalSystem.batch_derivative(system, params)
        fast = system.batch_derivative(params)
        assert np.allclose(
            fallback(0.0, fallback_y0), fast(0.0, fallback_y0)
        )
