"""ODE integrators: order of accuracy, batching, failure modes."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation import euler, rk4, rk45, rk4_sampled


def exponential(_t, y):
    return -y


def oscillator(_t, y):
    return np.array([y[1], -y[0]])


class TestEuler:
    def test_converges_first_order(self):
        y0 = np.array([1.0])
        _t, coarse = euler(exponential, y0, 0.0, 1.0, 50)
        _t, fine = euler(exponential, y0, 0.0, 1.0, 100)
        exact = np.exp(-1.0)
        error_ratio = abs(coarse[-1, 0] - exact) / abs(fine[-1, 0] - exact)
        assert 1.5 < error_ratio < 2.5  # halving h halves the error

    def test_output_shapes(self):
        times, states = euler(oscillator, [1.0, 0.0], 0.0, 2.0, 10)
        assert times.shape == (11,)
        assert states.shape == (11, 2)


class TestRk4:
    def test_fourth_order_accuracy(self):
        y0 = np.array([1.0])
        _t, coarse = rk4(exponential, y0, 0.0, 1.0, 20)
        _t, fine = rk4(exponential, y0, 0.0, 1.0, 40)
        exact = np.exp(-1.0)
        ratio = abs(coarse[-1, 0] - exact) / abs(fine[-1, 0] - exact)
        assert 12 < ratio < 20  # ~2^4

    def test_oscillator_energy(self):
        _t, states = rk4(oscillator, [1.0, 0.0], 0.0, 10.0, 2000)
        energy = states[:, 0] ** 2 + states[:, 1] ** 2
        assert np.allclose(energy, 1.0, atol=1e-8)

    def test_rejects_bad_steps(self):
        with pytest.raises(SimulationError):
            rk4(exponential, [1.0], 0.0, 1.0, 0)
        with pytest.raises(SimulationError):
            rk4(exponential, [1.0], 1.0, 0.0, 10)

    def test_divergence_detected(self):
        with np.errstate(over="ignore", invalid="ignore"):
            with pytest.raises(SimulationError):
                rk4(lambda _t, y: y**2, np.array([10.0]), 0.0, 10.0, 100)


class TestRk45:
    def test_matches_exact_solution(self):
        times, states = rk45(exponential, [1.0], 0.0, 2.0)
        assert times[-1] == pytest.approx(2.0)
        assert states[-1, 0] == pytest.approx(np.exp(-2.0), rel=1e-6)

    def test_agrees_with_rk4(self):
        _t, dense = rk4(oscillator, [1.0, 0.0], 0.0, 5.0, 5000)
        _times, adaptive = rk45(oscillator, [1.0, 0.0], 0.0, 5.0)
        assert np.allclose(adaptive[-1], dense[-1], atol=1e-5)


class TestRk4Sampled:
    def test_matches_full_rk4(self):
        y0 = np.array([[1.0, 0.0], [0.5, 0.5]])
        sample_steps = np.array([0, 7, 20])

        def batched(_t, y):
            return np.stack([y[:, 1], -y[:, 0]], axis=1)

        sampled = rk4_sampled(batched, y0, 0.0, 2.0, 20, sample_steps)
        assert sampled.shape == (3, 2, 2)
        for row, y_start in enumerate(y0):
            _t, full = rk4(oscillator, y_start, 0.0, 2.0, 20)
            assert np.allclose(sampled[:, row, :], full[sample_steps])

    def test_rejects_unsorted_samples(self):
        with pytest.raises(SimulationError):
            rk4_sampled(
                lambda _t, y: -y, np.ones((1, 1)), 0.0, 1.0, 10,
                np.array([5, 2]),
            )

    def test_rejects_out_of_range_samples(self):
        with pytest.raises(SimulationError):
            rk4_sampled(
                lambda _t, y: -y, np.ones((1, 1)), 0.0, 1.0, 10,
                np.array([0, 11]),
            )

    def test_rejects_empty_samples(self):
        with pytest.raises(SimulationError):
            rk4_sampled(
                lambda _t, y: -y, np.ones((1, 1)), 0.0, 1.0, 10,
                np.array([], dtype=int),
            )

    def test_repeated_sample_steps(self):
        sampled = rk4_sampled(
            lambda _t, y: -y, np.ones((1, 1)), 0.0, 1.0, 10,
            np.array([0, 0, 10]),
        )
        assert np.allclose(sampled[0], sampled[1])
