"""Observation construction and distance computation."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation import (
    DoublePendulum,
    ParameterSpace,
    make_observation,
)


@pytest.fixture()
def space():
    return ParameterSpace(DoublePendulum(), resolution=5)


class TestMakeObservation:
    def test_default_offset(self, space):
        obs = make_observation(space)
        for param in space.system.parameters:
            expected = param.low + 0.6 * (param.high - param.low)
            assert obs.true_params[param.name] == pytest.approx(expected)

    def test_states_shape(self, space):
        obs = make_observation(space)
        assert obs.states.shape == (space.time_resolution, 4)

    def test_explicit_true_params(self, space):
        params = {"phi1": 0.5, "m1": 1.0, "phi2": 0.7, "m2": 2.0}
        obs = make_observation(space, true_params=params)
        assert obs.true_params == params

    def test_missing_param_rejected(self, space):
        with pytest.raises(SimulationError):
            make_observation(space, true_params={"phi1": 0.5})

    def test_bad_offset_rejected(self, space):
        with pytest.raises(SimulationError):
            make_observation(space, offset=1.5)

    def test_observation_matches_direct_simulation(self, space):
        obs = make_observation(space)
        trajectory = space.system.simulate(obs.true_params)
        assert np.allclose(obs.states, trajectory[space.time_indices])


class TestDistances:
    def test_zero_for_reference_itself(self, space):
        obs = make_observation(space)
        assert np.allclose(obs.distances(obs.states), 0.0)

    def test_batch_axis(self, space):
        obs = make_observation(space)
        batch = np.stack([obs.states, obs.states + 1.0], axis=1)
        distances = obs.distances(batch)
        assert distances.shape == (space.time_resolution, 2)
        assert np.allclose(distances[:, 0], 0.0)
        assert np.allclose(distances[:, 1], 2.0)  # sqrt(4 * 1^2)

    def test_rejects_time_mismatch(self, space):
        obs = make_observation(space)
        with pytest.raises(SimulationError):
            obs.distances(obs.states[:-1])

    def test_rejects_state_dim_mismatch(self, space):
        obs = make_observation(space)
        with pytest.raises(SimulationError):
            obs.distances(obs.states[:, :2])
