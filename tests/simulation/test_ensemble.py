"""Ensemble tensor construction and simulation accounting."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation import (
    DoublePendulum,
    ParameterSpace,
    SimulationMeter,
    ensemble_from_truth,
    full_space_tensor,
    make_observation,
    simulate_fibers,
)


@pytest.fixture(scope="module")
def setup():
    space = ParameterSpace(DoublePendulum(), resolution=4)
    obs = make_observation(space)
    truth = full_space_tensor(space, obs)
    return space, obs, truth


class TestSimulateFibers:
    def test_matches_scalar_pipeline(self, setup):
        space, obs, _truth = setup
        indices = np.array([[0, 1, 2, 3], [3, 3, 3, 3]])
        fibers = simulate_fibers(space, obs, indices)
        for row, index in enumerate(indices):
            states = space.system.simulate(
                space.params_from_indices(index)
            )[space.time_indices]
            expected = np.linalg.norm(states - obs.states, axis=1)
            assert np.allclose(fibers[row], expected, atol=1e-10)

    def test_meter_charged(self, setup):
        space, obs, _truth = setup
        meter = SimulationMeter()
        simulate_fibers(space, obs, np.zeros((3, 4), dtype=int), meter=meter)
        assert meter.runs == 3
        assert meter.cells == 3 * space.time_resolution
        assert meter.wall_seconds > 0

    def test_rejects_bad_shape(self, setup):
        space, obs, _truth = setup
        with pytest.raises(SimulationError):
            simulate_fibers(space, obs, np.zeros((3, 2), dtype=int))


class TestFullSpaceTensor:
    def test_shape_and_chunking_invariance(self, setup):
        space, obs, truth = setup
        assert truth.shape == space.shape
        rechunked = full_space_tensor(space, obs, chunk_size=7)
        assert np.allclose(rechunked, truth)

    def test_spot_check_cell(self, setup):
        space, obs, truth = setup
        index = (1, 2, 3, 0)
        states = space.system.simulate(space.params_from_indices(index))[
            space.time_indices
        ]
        expected = np.linalg.norm(states - obs.states, axis=1)
        assert np.allclose(truth[index], expected, atol=1e-10)

    def test_rejects_bad_chunk(self, setup):
        space, obs, _truth = setup
        with pytest.raises(SimulationError):
            full_space_tensor(space, obs, chunk_size=0)


class TestEnsembleFromTruth:
    def test_values_read_from_truth(self, setup):
        space, _obs, truth = setup
        coords = np.array([[0, 0, 0, 0, 0], [1, 2, 3, 0, 2]])
        tensor = ensemble_from_truth(truth, space, coords)
        assert tensor.get((0, 0, 0, 0, 0)) == pytest.approx(truth[0, 0, 0, 0, 0])
        assert tensor.get((1, 2, 3, 0, 2)) == pytest.approx(truth[1, 2, 3, 0, 2])

    def test_meter_counts_distinct_runs(self, setup):
        space, _obs, truth = setup
        coords = np.array(
            [[0, 0, 0, 0, 0], [0, 0, 0, 0, 1], [1, 0, 0, 0, 0]]
        )
        meter = SimulationMeter()
        ensemble_from_truth(truth, space, coords, meter=meter)
        assert meter.runs == 2  # two distinct parameter combos
        assert meter.cells == 3

    def test_rejects_bad_coords(self, setup):
        space, _obs, truth = setup
        with pytest.raises(SimulationError):
            ensemble_from_truth(truth, space, np.zeros((2, 3), dtype=int))

    def test_rejects_truth_mismatch(self, setup):
        space, _obs, truth = setup
        with pytest.raises(SimulationError):
            ensemble_from_truth(
                truth[..., :-1], space, np.zeros((1, 5), dtype=int)
            )


class TestSimulationMeter:
    def test_merge(self):
        a = SimulationMeter(runs=2, cells=10, wall_seconds=1.0)
        b = SimulationMeter(runs=3, cells=5, wall_seconds=0.5)
        a.merge(b)
        assert a.runs == 5
        assert a.cells == 15
        assert a.wall_seconds == pytest.approx(1.5)
