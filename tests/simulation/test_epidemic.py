"""SEIR epidemic model."""

import numpy as np
import pytest

from repro.simulation import EpidemicSEIR, make_system


@pytest.fixture()
def system():
    return EpidemicSEIR()


class TestEpidemicSEIR:
    def test_registered(self):
        assert make_system("epidemic_seir").name == "epidemic_seir"

    def test_population_conserved(self, system):
        params = system.default_params()
        states = system.simulate(params)
        totals = states.sum(axis=1)
        assert np.allclose(totals, totals[0], atol=1e-10)

    def test_compartments_stay_in_bounds(self, system):
        params = {"beta": 0.8, "sigma": 0.5, "gamma": 0.05, "i0": 0.05}
        states = system.simulate(params)
        assert (states >= -1e-10).all()
        assert (states <= 1 + 1e-10).all()

    def test_subcritical_outbreak_fizzles(self, system):
        """R0 < 1: the infectious fraction decays monotonically-ish
        and the epidemic never takes off."""
        params = {"beta": 0.1, "sigma": 0.2, "gamma": 0.4, "i0": 0.01}
        assert system.basic_reproduction_number(params) < 1
        states = system.simulate(params)
        infectious = states[:, 2]
        assert infectious.max() <= params["i0"] + 1e-6
        assert infectious[-1] < 0.1 * params["i0"]

    def test_supercritical_outbreak_peaks(self, system):
        """R0 >> 1: infections rise above i0 then fall."""
        params = {"beta": 0.8, "sigma": 0.5, "gamma": 0.05, "i0": 0.01}
        assert system.basic_reproduction_number(params) > 1
        infectious = system.simulate(params)[:, 2]
        assert infectious.max() > 5 * params["i0"]
        assert infectious[-1] < infectious.max()

    def test_recovered_monotone(self, system):
        states = system.simulate(system.default_params())
        recovered = states[:, 3]
        assert (np.diff(recovered) >= -1e-12).all()

    def test_higher_beta_bigger_epidemic(self, system):
        base = {"sigma": 0.2, "gamma": 0.15, "i0": 0.01}
        mild = system.simulate({**base, "beta": 0.2})
        severe = system.simulate({**base, "beta": 0.8})
        assert severe[:, 2].max() > mild[:, 2].max()
        assert severe[-1, 3] > mild[-1, 3]  # larger final size

    def test_batch_matches_scalar(self, system):
        defaults = system.default_params()
        other = {k: v * 1.2 for k, v in defaults.items()}
        params = {k: np.array([defaults[k], other[k]]) for k in defaults}
        deriv = system.batch_derivative(params)
        y0 = system.batch_initial_state(params)
        batched = deriv(0.0, y0)
        for i, p in enumerate([defaults, other]):
            scalar = system.derivative(p)(0.0, system.initial_state(p))
            assert np.allclose(batched[i], scalar, atol=1e-12)

    def test_m2td_pipeline_on_epidemic(self):
        """The headline ordering holds on the motivating domain too."""
        from repro.core import EnsembleStudy
        from repro.sampling import RandomSampler

        study = EnsembleStudy.create(EpidemicSEIR(), resolution=5)
        ranks = [2] * 5
        m2td = study.run_m2td(ranks, variant="select", seed=1)
        random = study.run_conventional(
            RandomSampler(1), m2td.cells, ranks
        )
        assert m2td.accuracy > 3 * max(random.accuracy, 1e-9)
