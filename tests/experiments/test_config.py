"""Experiment configuration and the study cache."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    StudyCache,
    default_config,
    quick_config,
)
from repro.experiments.schemes import conventional_sampler


class TestConfigs:
    def test_default_validates(self):
        default_config().validate()

    def test_quick_is_smaller(self):
        quick = quick_config()
        default = default_config()
        quick.validate()
        assert max(quick.resolutions) <= max(default.resolutions)

    def test_validation_catches_bad_values(self):
        from dataclasses import replace

        with pytest.raises(ExperimentError):
            replace(default_config(), default_resolution=2).validate()
        with pytest.raises(ExperimentError):
            replace(default_config(), ranks=()).validate()


class TestStudyCache:
    def test_memoizes(self):
        cache = StudyCache()
        a = cache.study("double_pendulum", 4)
        b = cache.study("double_pendulum", 4)
        assert a is b

    def test_distinct_keys(self):
        cache = StudyCache()
        a = cache.study("double_pendulum", 4)
        b = cache.study("lorenz", 4)
        assert a is not b

    def test_clear(self):
        cache = StudyCache()
        a = cache.study("double_pendulum", 4)
        cache.clear()
        assert cache.study("double_pendulum", 4) is not a


class TestSchemes:
    def test_sampler_factory(self):
        assert conventional_sampler("Random", 0).name == "Random"
        assert conventional_sampler("Grid", 0).name == "Grid"
        assert conventional_sampler("Slice", 0).name == "Slice"

    def test_unknown_sampler(self):
        with pytest.raises(ExperimentError):
            conventional_sampler("Halton", 0)
