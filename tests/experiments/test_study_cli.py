"""Config-driven study CLI."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.study_cli import (
    load_config,
    main,
    render_results,
    run_config,
)


def write_config(tmp_path, config):
    path = tmp_path / "study.json"
    path.write_text(json.dumps(config))
    return str(path)


BASE_CONFIG = {
    "system": "double_pendulum",
    "resolution": 5,
    "rank": 2,
    "seed": 3,
    "schemes": [
        {"kind": "m2td", "variant": "select"},
        {"kind": "conventional", "sampler": "Random"},
    ],
}


class TestLoadConfig:
    def test_roundtrip(self, tmp_path):
        path = write_config(tmp_path, BASE_CONFIG)
        config = load_config(path)
        assert config["system"] == "double_pendulum"

    def test_missing_keys(self, tmp_path):
        path = write_config(tmp_path, {"system": "lorenz"})
        with pytest.raises(ExperimentError, match="missing required"):
            load_config(path)

    def test_empty_schemes(self, tmp_path):
        config = dict(BASE_CONFIG, schemes=[])
        path = write_config(tmp_path, config)
        with pytest.raises(ExperimentError):
            load_config(path)

    def test_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ExperimentError):
            load_config(str(path))


class TestRunConfig:
    def test_runs_all_schemes(self):
        results = run_config(BASE_CONFIG)
        assert [r.scheme for r in results] == ["M2TD-SELECT", "Random"]
        # conventional inherits the m2td budget
        assert results[1].cells == results[0].cells

    def test_explicit_budget(self):
        config = dict(
            BASE_CONFIG,
            schemes=[{"kind": "conventional", "sampler": "Grid", "budget": 50}],
        )
        results = run_config(config)
        assert results[0].cells <= 50

    def test_conventional_without_budget_rejected(self):
        config = dict(
            BASE_CONFIG,
            schemes=[{"kind": "conventional", "sampler": "Random"}],
        )
        with pytest.raises(ExperimentError, match="budget"):
            run_config(config)

    def test_unknown_kind_rejected(self):
        config = dict(BASE_CONFIG, schemes=[{"kind": "quantum"}])
        with pytest.raises(ExperimentError, match="unknown scheme"):
            run_config(config)

    def test_zero_join_scheme(self):
        config = dict(
            BASE_CONFIG,
            schemes=[
                {
                    "kind": "m2td",
                    "join": "zero",
                    "free_fraction": 0.3,
                    "sub_sampling": "random",
                }
            ],
        )
        results = run_config(config)
        assert results[0].join_nnz > 0


class TestMain:
    def test_end_to_end(self, tmp_path, capsys):
        path = write_config(tmp_path, BASE_CONFIG)
        output = tmp_path / "results.json"
        assert main([path, "--output", str(output)]) == 0
        printed = capsys.readouterr().out
        assert "M2TD-SELECT" in printed
        payload = json.loads(output.read_text())
        assert len(payload) == 2
        assert payload[0]["scheme"] == "M2TD-SELECT"

    def test_render(self):
        results = run_config(BASE_CONFIG)
        text = render_results(results)
        assert "accuracy" in text
        assert "M2TD-SELECT" in text
