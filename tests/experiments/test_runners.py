"""Smoke-run every experiment at a tiny scale and check the headline
shapes the paper reports."""

from dataclasses import replace

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    StudyCache,
    available_experiments,
    default_config,
    run_experiment,
)


@pytest.fixture(scope="module")
def tiny_config():
    return replace(
        default_config(),
        resolutions=(5,),
        ranks=(2,),
        default_resolution=5,
        default_rank=2,
        servers=(1, 4),
        pivot_fractions=(1.0, 0.5),
        free_fractions=(1.0, 0.5),
    )


@pytest.fixture(scope="module")
def cache():
    return StudyCache()


class TestRegistry:
    def test_all_experiments_listed(self):
        expected = {
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "fig6",
            "fig-cost",
            "fig-budget",
            "ext-adaptive",
            "ext-baselines",
            "ext-campaign",
            "ext-completion",
            "ext-multiway",
            "ext-noise",
            "ext-pendulum5",
            "ext-scaling",
            "ext-seeds",
            "ext-subspace",
        }
        assert expected == set(available_experiments())

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")


class TestTable2(object):
    def test_shapes(self, tiny_config, cache):
        report = run_experiment("table2", tiny_config, cache)
        rows = report.as_dicts()
        assert len(rows) == 1  # one resolution x one rank
        row = rows[0]
        # headline ordering: every M2TD variant beats every baseline
        m2td_floor = min(
            row["M2TD-AVG"], row["M2TD-CONCAT"], row["M2TD-SELECT"]
        )
        conventional_ceiling = max(row["Random"], row["Grid"], row["Slice"])
        assert m2td_floor > 3 * conventional_ceiling

    def test_time_table_present(self, tiny_config, cache):
        report = run_experiment("table2", tiny_config, cache)
        assert "decomposition time (s)" in report.extra_tables


class TestTable3:
    def test_scaling_shape(self, tiny_config, cache):
        report = run_experiment("table3", tiny_config, cache)
        rows = report.as_dicts()
        assert rows[0]["Servers"] == 1
        # more servers -> no slower
        assert rows[-1]["Total"] <= rows[0]["Total"] + 1e-9
        # phase 3 is the costliest phase on one server
        assert rows[0]["Phase3"] >= rows[0]["Phase1"]


class TestTable4:
    def test_all_systems_present(self, tiny_config, cache):
        report = run_experiment("table4", tiny_config, cache)
        systems = [row["System"] for row in report.as_dicts()]
        assert systems == list(tiny_config.systems)

    def test_m2td_wins_everywhere(self, tiny_config, cache):
        report = run_experiment("table4", tiny_config, cache)
        for row in report.as_dicts():
            assert row["M2TD-SELECT"] > 3 * max(
                row["Random"], row["Grid"], row["Slice"]
            )


class TestTable5:
    def test_budget_rows(self, tiny_config, cache):
        report = run_experiment("table5", tiny_config, cache)
        rows = report.as_dicts()
        assert [r["Stitch"] for r in rows] == ["join", "join", "zero-join"]
        # zero-join stitches a denser tensor than plain join at the
        # same low budget
        assert rows[2]["join nnz"] > rows[1]["join nnz"]


class TestTables67:
    def test_reducing_e_hurts_more_than_p(self, tiny_config, cache):
        table6 = run_experiment("table6", tiny_config, cache).as_dicts()
        table7 = run_experiment("table7", tiny_config, cache).as_dicts()
        drop_p = table6[0]["M2TD-SELECT"] - table6[-1]["M2TD-SELECT"]
        drop_e = table7[0]["M2TD-SELECT"] - table7[-1]["M2TD-SELECT"]
        assert drop_e > drop_p - 1e-9


class TestTable8:
    def test_every_pivot_beats_conventional(self, tiny_config, cache):
        report = run_experiment("table8", tiny_config, cache)
        for row in report.as_dicts():
            assert row["M2TD-SELECT"] > 2 * max(
                row["Random"], row["Grid"], row["Slice"]
            )

    def test_all_pivots_present(self, tiny_config, cache):
        report = run_experiment("table8", tiny_config, cache)
        pivots = [row["Pivot"] for row in report.as_dicts()]
        assert pivots == list(tiny_config.pivots)


class TestExtensions:
    def test_completion_between_baseline_and_m2td(self, tiny_config, cache):
        report = run_experiment("ext-completion", tiny_config, cache)
        rows = report.as_dicts()
        baseline, completion, m2td = (row["accuracy"] for row in rows)
        assert completion > baseline
        assert m2td > 0.5 * completion  # M2TD competitive or better

    def test_multiway_depth_tradeoff(self, tiny_config, cache):
        report = run_experiment("ext-multiway", tiny_config, cache)
        rows = report.as_dicts()
        two_way, four_way = rows
        assert four_way["budget cells"] < two_way["budget cells"]
        assert two_way["M2TD-SELECT"] >= four_way["M2TD-SELECT"]
        # even the deep partition beats Random at its own budget
        assert four_way["M2TD-SELECT"] > 3 * max(
            four_way["Random @ same budget"], 1e-9
        )

    def test_baselines_lhs_in_conventional_cluster(self, tiny_config, cache):
        report = run_experiment("ext-baselines", tiny_config, cache)
        rows = {row["scheme"]: row["accuracy"] for row in report.as_dicts()}
        m2td = rows["Partition-stitch + M2TD-SELECT"]
        assert m2td > 3 * rows["LHS"]
        # MACH rescaling collapses at ensemble sparsity
        assert rows["Random + MACH 1/p rescaling"] < rows["Random"]

    def test_adaptive_structured_beats_unstructured(self, tiny_config, cache):
        report = run_experiment("ext-adaptive", tiny_config, cache)
        rows = {row["scheme"]: row for row in report.as_dicts()}
        structured = rows["adaptive fibers (model-mismatch)"][
            "accuracy (mean)"
        ]
        unstructured = rows["conventional random cells"]["accuracy (mean)"]
        assert structured > 3 * max(unstructured, 1e-9)

    def test_noise_preserves_ordering(self, tiny_config, cache):
        report = run_experiment("ext-noise", tiny_config, cache)
        rows = report.as_dicts()
        # M2TD beats Random at every noise level...
        for row in rows:
            assert row["M2TD-SELECT"] > 3 * max(row["Random"], 1e-9)
        # ...and noise degrades (or leaves ~unchanged) M2TD's accuracy.
        assert rows[-1]["M2TD-SELECT"] <= rows[0]["M2TD-SELECT"] + 0.05

    def test_scaling_ratio_grows(self, tiny_config, cache):
        report = run_experiment("ext-scaling", tiny_config, cache)
        rows = report.as_dicts()
        assert len(rows) >= 2
        # the gap grows (or at worst holds) as the space grows
        assert rows[-1]["ratio"] > 0.5 * rows[0]["ratio"]
        for row in rows:
            assert row["ratio"] > 1

    def test_seed_spread_small_vs_gap(self, tiny_config, cache):
        report = run_experiment("ext-seeds", tiny_config, cache)
        rows = {row["scheme"]: row for row in report.as_dicts()}
        m2td = rows["M2TD-SELECT"]
        assert m2td["std"] < 0.3 * m2td["mean accuracy"]
        worst_m2td = m2td["min"]
        best_conventional = max(
            rows[s]["max"] for s in ("Random", "Grid", "Slice")
        )
        assert worst_m2td > 2 * max(best_conventional, 1e-9)

    def test_pendulum5_k2(self, tiny_config, cache):
        report = run_experiment("ext-pendulum5", tiny_config, cache)
        rows = {row["scheme"]: row["accuracy"] for row in report.as_dicts()}
        m2td_floor = min(
            rows["M2TD-AVG"], rows["M2TD-CONCAT"], rows["M2TD-SELECT"]
        )
        conventional_ceiling = max(
            rows["Random"], rows["Grid"], rows["Slice"]
        )
        assert m2td_floor > 3 * conventional_ceiling


class TestFigures:
    def test_budget_curve_monotone_for_m2td(self, tiny_config, cache):
        report = run_experiment("fig-budget", tiny_config, cache)
        rows = report.as_dicts()
        accuracies = [row["M2TD-SELECT"] for row in rows]
        # budget shrinks down the rows; accuracy must not increase much
        assert accuracies[0] >= accuracies[-1]
        # At generous budgets M2TD sits clearly above the conventional
        # cluster; at starved budgets (~E < half) the curves converge —
        # which IS the curve's message, so only the top rows assert it.
        for row in rows[:2]:  # 100% and 75% budget
            assert row["M2TD-SELECT"] > 2 * max(
                row["Random"], row["Grid"], row["Slice"], 1e-9
            )

    def test_fig6_gain_matches_analytic(self, tiny_config, cache):
        report = run_experiment("fig6", tiny_config, cache)
        for row in report.as_dicts():
            assert row["gain (measured)"] == pytest.approx(
                row["gain (analytic)"], rel=0.01
            )

    def test_cost_amortisation_speedup(self, tiny_config, cache):
        report = run_experiment("fig-cost", tiny_config, cache)
        rows = report.as_dicts()
        partitioned, full = rows[0], rows[1]
        assert partitioned["runs"] < full["runs"]
        assert partitioned["integrator seconds"] < full["integrator seconds"]
