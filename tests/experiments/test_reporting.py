"""Report rendering and formatting."""

from repro.experiments import ExperimentReport, format_table, format_value


class TestFormatValue:
    def test_small_float_scientific(self):
        assert format_value(3e-4) == "3e-04"

    def test_regular_float(self):
        assert format_value(0.4567) == "0.4567"

    def test_zero(self):
        assert format_value(0.0) == "0.0000"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("Grid") == "Grid"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.0], [30, 0.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        header, divider, row1, row2 = lines
        assert len(header) == len(divider) == len(row1) == len(row2)

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestExperimentReport:
    def test_render_contains_everything(self):
        report = ExperimentReport(
            experiment_id="tableX",
            title="demo",
            headers=["a", "b"],
        )
        report.add_row(1, 0.5)
        report.notes.append("scaled down")
        sub = ExperimentReport("sub", "times", ["t"])
        sub.add_row(0.1)
        report.extra_tables["times"] = sub
        text = report.render()
        assert "tableX" in text
        assert "demo" in text
        assert "note: scaled down" in text
        assert "times" in text

    def test_as_dicts(self):
        report = ExperimentReport("t", "d", ["x", "y"])
        report.add_row(1, 2)
        assert report.as_dicts() == [{"x": 1, "y": 2}]
