"""The ``python -m repro.experiments`` CLI."""

import json

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiments == ["table2"]
        assert not args.quick
        assert not args.all

    def test_flags(self):
        args = build_parser().parse_args(["--all", "--quick", "--output", "x"])
        assert args.all and args.quick
        assert args.output == "x"


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "ext-subspace" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_runs_single_experiment(self, capsys, tmp_path, monkeypatch):
        # Patch the quick config to a tiny one so the test stays fast.
        from dataclasses import replace

        import repro.experiments.__main__ as cli
        from repro.experiments import default_config

        tiny = replace(
            default_config(),
            resolutions=(5,),
            ranks=(2,),
            default_resolution=5,
            default_rank=2,
            servers=(1, 2),
        )
        monkeypatch.setattr(cli, "quick_config", lambda: tiny)
        output = tmp_path / "report.txt"
        assert main(["table3", "--quick", "--output", str(output)]) == 0
        text = output.read_text()
        assert "table3" in text
        assert "Servers" in text

    def test_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["table42"])
