"""Cross-module integration: the paper's full story on small studies."""

import numpy as np
import pytest

from repro.core import EnsembleStudy
from repro.distributed import ClusterModel, distributed_m2td
from repro.sampling import (
    GridSampler,
    RandomSampler,
    SliceSampler,
    budget_for_fractions,
)
from repro.storage import BlockTensorStore
from repro.tensor import SparseTensor

RANKS = [3] * 5


class TestHeadlineStory:
    """Table II's comparison, end to end, on the shared tiny study."""

    def test_m2td_orders_of_magnitude_better(self, pendulum_study):
        study = pendulum_study
        budget = study.matched_budget()
        m2td = {
            variant: study.run_m2td(RANKS, variant=variant, seed=1)
            for variant in ("avg", "concat", "select")
        }
        conventional = {
            sampler.name: study.run_conventional(sampler, budget, RANKS)
            for sampler in (RandomSampler(1), GridSampler(), SliceSampler(1))
        }
        worst_m2td = min(r.accuracy for r in m2td.values())
        best_conventional = max(r.accuracy for r in conventional.values())
        assert worst_m2td > 5 * max(best_conventional, 1e-9)

    def test_m2td_slower_but_worth_it(self, pendulum_study):
        """The paper: M2TD costs more decomposition time than the
        conventional schemes (denser stitched tensor)."""
        study = pendulum_study
        m2td = study.run_m2td(RANKS, variant="select", seed=1)
        random = study.run_conventional(
            RandomSampler(1), study.matched_budget(), RANKS
        )
        assert m2td.join_nnz > random.cells


class TestEndToEndDistributed:
    def test_study_to_cluster_report(self, pendulum_study):
        study = pendulum_study
        partition = study.default_partition()
        budget = budget_for_fractions(partition, 1.0, 1.0)
        x1, x2, _cells, _runs = study.sample_sub_ensembles(
            partition, budget, seed=0
        )
        outcome = distributed_m2td(x1, x2, partition, RANKS)
        accuracy_single = study.run_m2td(RANKS, seed=0).accuracy
        accuracy_distributed = outcome.result.accuracy(study.truth)
        assert accuracy_distributed == pytest.approx(accuracy_single, abs=1e-9)
        times = outcome.phase_times(ClusterModel(n_servers=4))
        assert set(times) == {"phase1", "phase2", "phase3"}


class TestStorageIntegration:
    def test_persist_and_redecompose(self, pendulum_study, tmp_path):
        """Store a sampled ensemble, reload it, decompose — identical
        result to the in-memory path."""
        study = pendulum_study
        sampler = RandomSampler(seed=3)
        sample = sampler.sample(study.space.shape, 200)
        values = study.truth[tuple(sample.coords.T)]
        ensemble = SparseTensor(study.space.shape, sample.coords, values)
        store = BlockTensorStore(tmp_path / "db")
        store.put("pendulum_ens", ensemble)
        reloaded = store.get("pendulum_ens")
        assert reloaded == ensemble

        from repro.tensor import hosvd

        original = hosvd(ensemble, (2, 2, 2, 2, 2))
        reread = hosvd(reloaded, (2, 2, 2, 2, 2))
        assert np.allclose(original.reconstruct(), reread.reconstruct())


class TestCrossSystem:
    @pytest.mark.parametrize(
        "study_fixture", ["pendulum_study", "triple_study", "lorenz_study"]
    )
    def test_m2td_beats_random_everywhere(self, study_fixture, request):
        study = request.getfixturevalue(study_fixture)
        ranks = [2] * 5
        m2td = study.run_m2td(ranks, variant="select", seed=2)
        random = study.run_conventional(
            RandomSampler(2), study.matched_budget(), ranks
        )
        assert m2td.accuracy > 3 * max(random.accuracy, 1e-9)


class TestReproducibility:
    def test_same_seed_same_result(self, pendulum_study):
        a = pendulum_study.run_m2td(RANKS, seed=11)
        b = pendulum_study.run_m2td(RANKS, seed=11)
        assert a.accuracy == pytest.approx(b.accuracy, abs=0)

    def test_different_pivot_fraction_changes_budget(self, pendulum_study):
        full = pendulum_study.run_m2td(RANKS, seed=0)
        half = pendulum_study.run_m2td(RANKS, pivot_fraction=0.5, seed=0)
        assert half.cells == full.cells // 2
