"""Golden regression pins: M2TD quality at a small fixed configuration.

The values below are the Table-2/Table-3-style quality numbers of this
repository's implementation on the double-pendulum study at resolution
6 (the session fixture), ranks ``[3] * 5``, seed 7.  They were computed
once from a verified run and are pinned with explicit tolerances: the
pipeline is deterministic given the seed, so anything beyond float
noise across BLAS builds means an algorithmic change — which should be
deliberate and should update these constants in the same commit.
"""

import pytest

from repro.sampling import RandomSampler

RANK = 3
SEED = 7

#: accuracy of each factor-stitching variant with plain-join stitching.
GOLDEN_JOIN_ACCURACY = {
    "avg": 0.4614702062582059,
    "concat": 0.4638749828964728,
    "select": 0.4636010685043652,
}

#: select variant with zero-join stitching, half the free fraction,
#: random sub-sampling.
GOLDEN_ZERO_ACCURACY = 0.24006715932484157

#: conventional random sampling at the M2TD-matched budget.
GOLDEN_RANDOM_ACCURACY = 0.0283975245547341

#: shared cost accounting of the join-variant runs.
GOLDEN_JOIN_CELLS = 432
GOLDEN_JOIN_NNZ = 7776

ACCURACY_TOL = 1e-6


def ranks_for(study):
    return [RANK] * study.space.n_modes


class TestM2TDJoinVariants:
    @pytest.mark.parametrize(
        "variant,expected", sorted(GOLDEN_JOIN_ACCURACY.items())
    )
    def test_accuracy_pinned(self, pendulum_study, variant, expected):
        result = pendulum_study.run_m2td(
            ranks_for(pendulum_study), variant=variant, pivot="t", seed=SEED
        )
        assert result.accuracy == pytest.approx(expected, abs=ACCURACY_TOL)
        assert result.cells == GOLDEN_JOIN_CELLS
        assert result.join_nnz == GOLDEN_JOIN_NNZ


class TestM2TDZeroJoin:
    def test_accuracy_pinned(self, pendulum_study):
        result = pendulum_study.run_m2td(
            ranks_for(pendulum_study),
            variant="select",
            join_kind="zero",
            free_fraction=0.5,
            sub_sampling="random",
            seed=SEED,
        )
        assert result.accuracy == pytest.approx(
            GOLDEN_ZERO_ACCURACY, abs=ACCURACY_TOL
        )
        assert result.cells == 216
        assert result.join_nnz == 5718


class TestConventionalBaseline:
    def test_random_sampler_pinned(self, pendulum_study):
        budget = pendulum_study.matched_budget()
        assert budget == GOLDEN_JOIN_CELLS
        result = pendulum_study.run_conventional(
            RandomSampler(SEED), budget, ranks_for(pendulum_study)
        )
        assert result.accuracy == pytest.approx(
            GOLDEN_RANDOM_ACCURACY, abs=ACCURACY_TOL
        )
        assert result.cells == budget

    def test_m2td_beats_conventional_at_matched_budget(self, pendulum_study):
        # The paper's headline claim at this scale: every M2TD variant
        # clears the conventional baseline by an order of magnitude.
        assert (
            min(GOLDEN_JOIN_ACCURACY.values()) > 10 * GOLDEN_RANDOM_ACCURACY
        )
