"""Property-based tests for :class:`repro.runtime.retry.RetryPolicy`.

The backoff schedule has three contracts the scheduler leans on:

* the per-attempt delay sequence is non-decreasing (geometric growth)
  until the ``max_backoff_seconds`` plateau, and never exceeds it;
* with a ``backoff_budget_seconds``, the *cumulative* sleep across all
  retries never exceeds the budget, no matter how many attempts the
  policy allows;
* ``should_retry`` never authorises an attempt beyond ``max_attempts``.

Example-based tests pin a handful of schedules; these properties pin
every schedule Hypothesis can dream up.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.runtime.retry import RetryPolicy  # noqa: E402

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    backoff_seconds=st.floats(
        min_value=0.0, max_value=10.0, allow_nan=False
    ),
    backoff_factor=st.floats(
        min_value=1.0, max_value=4.0, allow_nan=False
    ),
    max_backoff_seconds=st.floats(
        min_value=0.0, max_value=30.0, allow_nan=False
    ),
    backoff_budget_seconds=st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    ),
)


@given(policy=policies)
@settings(max_examples=200)
def test_delays_respect_per_sleep_cap(policy):
    for attempt in range(1, policy.max_attempts + 1):
        delay = policy.delay(attempt)
        assert delay >= 0.0
        assert delay <= policy.max_backoff_seconds + 1e-12


@given(policy=policies)
@settings(max_examples=200)
def test_raw_backoff_sequence_is_non_decreasing(policy):
    raw = [policy._raw_delay(a) for a in range(2, policy.max_attempts + 1)]
    assert all(b >= a - 1e-12 for a, b in zip(raw, raw[1:]))


@given(policy=policies)
@settings(max_examples=200)
def test_total_sleep_never_exceeds_budget(policy):
    total = sum(
        policy.delay(attempt)
        for attempt in range(1, policy.max_attempts + 1)
    )
    assert math.isclose(
        total, policy.total_backoff(policy.max_attempts),
        rel_tol=1e-9, abs_tol=1e-9,
    )
    if policy.backoff_budget_seconds is not None:
        assert total <= policy.backoff_budget_seconds + 1e-9


@given(policy=policies, attempt=st.integers(min_value=1, max_value=20))
@settings(max_examples=200)
def test_should_retry_never_exceeds_max_attempts(policy, attempt):
    error = ValueError("transient")
    if attempt >= policy.max_attempts:
        assert not policy.should_retry(attempt, error)
    else:
        assert policy.should_retry(attempt, error)


@given(policy=policies)
@settings(max_examples=100)
def test_first_attempt_never_sleeps(policy):
    assert policy.delay(1) == 0.0
    assert policy.total_backoff(1) == 0.0
