"""Runtime wired through the domain layers: studies, configs, D-M2TD.

These are the acceptance tests for the execution runtime: repeated
ground-truth builds over the same (system, resolution) must do zero
integrator work once cached, and parallel execution must change
wall-clock only — never results.
"""

import numpy as np
import pytest

from repro.core import EnsembleStudy
from repro.core.m2td import m2td_decompose
from repro.distributed import distributed_m2td
from repro.runtime import Runtime
from repro.sampling import PFPartition
from repro.simulation import DoublePendulum, SimulationMeter
from repro.tensor import SparseTensor

RESOLUTION = 4


class TestGroundTruthCache:
    def test_disk_cache_second_build_charges_zero_runs(self, tmp_path):
        meter_first = SimulationMeter()
        first = Runtime(workers=1, cache_dir=tmp_path)
        try:
            study = EnsembleStudy.create(
                DoublePendulum(),
                RESOLUTION,
                runtime=first,
                meter=meter_first,
            )
        finally:
            first.shutdown()
        assert meter_first.runs > 0

        # A fresh Runtime over the same cache dir simulates a new
        # process: the memory tier is empty, the disk tier is not.
        meter_second = SimulationMeter()
        second = Runtime(workers=1, cache_dir=tmp_path)
        try:
            rebuilt = EnsembleStudy.create(
                DoublePendulum(),
                RESOLUTION,
                runtime=second,
                meter=meter_second,
            )
        finally:
            second.shutdown()
        assert meter_second.runs == 0
        assert meter_second.cells == 0
        np.testing.assert_array_equal(rebuilt.truth, study.truth)
        assert second.cache.stats.disk_hits == 1

    def test_memory_tier_hit_within_one_runtime(self):
        runtime = Runtime(workers=1)
        meter = SimulationMeter()
        try:
            EnsembleStudy.create(
                DoublePendulum(), RESOLUTION, runtime=runtime, meter=meter
            )
            runs_after_first = meter.runs
            EnsembleStudy.create(
                DoublePendulum(), RESOLUTION, runtime=runtime, meter=meter
            )
        finally:
            runtime.shutdown()
        assert runs_after_first > 0
        assert meter.runs == runs_after_first  # second build charged 0
        assert runtime.cache.stats.hits == 1

    def test_different_resolution_is_a_miss(self):
        runtime = Runtime(workers=1)
        meter = SimulationMeter()
        try:
            EnsembleStudy.create(
                DoublePendulum(), RESOLUTION, runtime=runtime, meter=meter
            )
            first = meter.runs
            EnsembleStudy.create(
                DoublePendulum(),
                RESOLUTION + 1,
                runtime=runtime,
                meter=meter,
            )
        finally:
            runtime.shutdown()
        assert meter.runs > first


class TestStudyConfig:
    CONFIG = {
        "system": "double_pendulum",
        "resolution": RESOLUTION,
        "rank": 2,
        "seed": 7,
        "schemes": [
            {"kind": "m2td", "variant": "select", "pivot": "t"},
            {"kind": "m2td", "variant": "avg", "pivot": "t"},
            {"kind": "conventional", "sampler": "Random"},
        ],
    }

    def test_parallel_config_matches_sequential(self):
        from repro.experiments.study_cli import run_config

        sequential = run_config(dict(self.CONFIG), runtime=None)
        runtime = Runtime(workers=2)
        try:
            parallel = run_config(dict(self.CONFIG), runtime=runtime)
        finally:
            runtime.shutdown()
        assert len(sequential) == len(parallel)
        for seq, par in zip(sequential, parallel):
            assert seq.scheme == par.scheme
            assert seq.accuracy == pytest.approx(par.accuracy, rel=1e-12)
            assert seq.cells == par.cells
            assert seq.runs == par.runs

    def test_cli_main_with_workers_and_cache_dir(self, tmp_path, capsys):
        import json

        from repro.experiments.study_cli import main

        config_path = tmp_path / "study.json"
        config_path.write_text(json.dumps(self.CONFIG))
        output_path = tmp_path / "results.json"
        code = main(
            [
                str(config_path),
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--output",
                str(output_path),
            ]
        )
        assert code == 0
        assert "scheme" in capsys.readouterr().out
        rows = json.loads(output_path.read_text())
        assert len(rows) == len(self.CONFIG["schemes"])
        # The ground truth landed in the on-disk cache.
        assert list((tmp_path / "cache").glob("*.npz"))


class TestDistributedM2TD:
    @staticmethod
    def _inputs():
        shape = (4, 4, 4, 4, 4)
        part = PFPartition(shape, (4,), (0, 1), (2, 3))
        rng = np.random.default_rng(11)
        x1 = SparseTensor.from_dense(
            rng.standard_normal(part.sub_shape(1)) + 2.0, keep_zeros=True
        )
        x2 = SparseTensor.from_dense(
            rng.standard_normal(part.sub_shape(2)) + 2.0, keep_zeros=True
        )
        return part, x1, x2

    def test_runtime_execution_matches_single_node(self):
        part, x1, x2 = self._inputs()
        ranks = [2] * 5
        local = m2td_decompose(x1, x2, part, ranks, variant="select")
        runtime = Runtime(workers=3)
        try:
            dist = distributed_m2td(
                x1, x2, part, ranks, variant="select", runtime=runtime
            )
        finally:
            runtime.shutdown()
        np.testing.assert_allclose(
            local.tucker.core, dist.result.tucker.core
        )
        for a, b in zip(local.tucker.factors, dist.result.tucker.factors):
            np.testing.assert_allclose(a, b)
        # The three phases ran as named graph tasks with metrics.
        names = {m.name for m in runtime.report.tasks}
        assert {"phase1", "phase2", "phase3"} <= names
