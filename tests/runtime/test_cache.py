"""ResultCache: fingerprints, LRU behaviour, on-disk round-trips."""

import numpy as np
import pytest

from repro.exceptions import CacheError
from repro.runtime import ResultCache, fingerprint


class TestFingerprint:
    def test_stable_across_calls(self):
        key = ("lorenz", (5, 5, 5), 1.5, None)
        assert fingerprint("truth", key) == fingerprint("truth", key)

    def test_namespace_separates(self):
        assert fingerprint("a", 1) != fingerprint("b", 1)

    def test_payload_separates(self):
        assert fingerprint("n", (1, 2)) != fingerprint("n", (1, 3))

    def test_arrays_hash_by_content(self):
        a = np.arange(6.0).reshape(2, 3)
        assert fingerprint("n", a) == fingerprint("n", a.copy())
        b = a.copy()
        b[0, 0] = 99.0
        assert fingerprint("n", a) != fingerprint("n", b)

    def test_array_shape_matters(self):
        a = np.arange(6.0)
        assert fingerprint("n", a) != fingerprint("n", a.reshape(2, 3))

    def test_dict_order_irrelevant(self):
        assert fingerprint("n", {"x": 1, "y": 2}) == fingerprint(
            "n", {"y": 2, "x": 1}
        )

    def test_type_distinctions(self):
        assert fingerprint("n", 1) != fingerprint("n", "1")
        assert fingerprint("n", True) != fingerprint("n", 1)

    def test_unsupported_type_raises(self):
        with pytest.raises(CacheError, match="fingerprint"):
            fingerprint("n", object())


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        hit, _ = cache.get("k")
        assert not hit
        cache.put("k", 42)
        hit, value = cache.get("k")
        assert hit and value == 42
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_drops_oldest(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a becomes most recent
        cache.put("c", 3)  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_bytes_accounting(self):
        cache = ResultCache()
        nbytes = cache.put("k", np.zeros(10))
        assert nbytes == 80
        assert cache.stats.bytes_cached == 80

    def test_rejects_zero_capacity(self):
        with pytest.raises(CacheError):
            ResultCache(max_entries=0)


class TestDiskTier:
    def test_array_round_trip(self, tmp_path):
        first = ResultCache(directory=tmp_path)
        value = np.arange(12.0).reshape(3, 4)
        first.put("key1", value)
        # fresh instance simulates a new process: memory tier is empty
        second = ResultCache(directory=tmp_path)
        hit, loaded = second.get("key1")
        assert hit
        np.testing.assert_array_equal(loaded, value)
        assert second.stats.disk_hits == 1

    def test_structured_value_round_trip(self, tmp_path):
        value = {
            "truth": np.ones((2, 2)),
            "meta": (1, 2.5, "label", None, [True, np.float64(3.5)]),
        }
        ResultCache(directory=tmp_path).put("k", value)
        hit, loaded = ResultCache(directory=tmp_path).get("k")
        assert hit
        np.testing.assert_array_equal(loaded["truth"], value["truth"])
        assert loaded["meta"][:4] == (1, 2.5, "label", None)
        assert loaded["meta"][4][0] is True
        assert loaded["meta"][4][1] == 3.5

    def test_eviction_keeps_disk_copy(self, tmp_path):
        cache = ResultCache(max_entries=1, directory=tmp_path)
        cache.put("a", np.zeros(2))
        cache.put("b", np.zeros(2))  # evicts a from memory
        hit, _ = cache.get("a")  # served from disk
        assert hit and cache.stats.disk_hits == 1

    def test_unpersistable_value_stays_memory_only(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", object())  # no npz encoding exists
        assert cache.disk_keys() == []
        hit, _ = cache.get("k")  # but the memory tier still serves it
        assert hit

    def test_no_directory_means_no_disk(self, tmp_path):
        cache = ResultCache()
        cache.put("k", np.zeros(2))
        assert cache.disk_keys() == []

    def test_clear_drops_memory_not_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", np.zeros(2))
        cache.clear()
        assert len(cache) == 0
        hit, _ = cache.get("k")
        assert hit  # disk tier survived
