"""TaskGraph construction, validation and topological scheduling."""

import pytest

from repro.exceptions import TaskGraphError
from repro.runtime import TaskGraph, output


def test_topological_order_respects_deps():
    g = TaskGraph()
    g.add("c", lambda: 3, deps=("a", "b"))
    g.add("a", lambda: 1)
    g.add("b", lambda: 2, deps=("a",))
    order = g.topological_order()
    assert order.index("a") < order.index("b") < order.index("c")


def test_insertion_order_breaks_ties():
    g = TaskGraph()
    for name in ("t3", "t1", "t2"):
        g.add(name, lambda: None)
    assert g.topological_order() == ["t3", "t1", "t2"]


def test_output_placeholders_become_deps():
    g = TaskGraph()
    g.add("a", lambda: 1)
    g.add("b", lambda x: x, output("a"))
    g.add("c", lambda x=None: x, x=output("b"))
    assert g.task("b").deps == ("a",)
    assert g.task("c").deps == ("b",)


def test_explicit_and_placeholder_deps_merge_without_dupes():
    g = TaskGraph()
    g.add("a", lambda: 1)
    g.add("b", lambda x: x, output("a"), deps=("a",))
    assert g.task("b").deps == ("a",)


def test_cycle_detection():
    g = TaskGraph()
    g.add("x", lambda v: v, output("y"))
    g.add("y", lambda v: v, output("x"))
    with pytest.raises(TaskGraphError, match="cycle"):
        g.validate()


def test_unknown_dependency_rejected():
    g = TaskGraph()
    g.add("a", lambda: 1, deps=("ghost",))
    with pytest.raises(TaskGraphError, match="ghost"):
        g.validate()


def test_duplicate_name_rejected():
    g = TaskGraph()
    g.add("a", lambda: 1)
    with pytest.raises(TaskGraphError, match="duplicate"):
        g.add("a", lambda: 2)


def test_bad_affinity_rejected():
    g = TaskGraph()
    with pytest.raises(TaskGraphError, match="affinity"):
        g.add("a", lambda: 1, affinity="gpu")


def test_non_callable_rejected():
    g = TaskGraph()
    with pytest.raises(TaskGraphError, match="callable"):
        g.add("a", 42)


def test_dependents_reverse_map():
    g = TaskGraph()
    g.add("a", lambda: 1)
    g.add("b", lambda x: x, output("a"))
    g.add("c", lambda x: x, output("a"))
    assert g.dependents()["a"] == ["b", "c"]
