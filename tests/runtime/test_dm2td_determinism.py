"""Runtime-scheduled D-M2TD must be byte-identical across pool widths.

Uses the shared determinism harness from ``tests/conftest.py`` — the
same check the MapReduce engine and the chaos suite run — so "the
runtime does not perturb numerics" is asserted at the byte level, not
via tolerances.
"""

from repro.distributed import distributed_m2td
from repro.runtime import Runtime


def test_runtime_scheduled_dm2td_identical_across_workers(
    dm2td_inputs, assert_identical_across_workers
):
    x1, x2, part, ranks = dm2td_inputs

    def run(workers):
        with Runtime(workers=workers) as runtime:
            return distributed_m2td(x1, x2, part, ranks, runtime=runtime)

    assert_identical_across_workers(run)
