"""Executor venues: one contract, identical results everywhere.

The determinism test runs one full ``EnsembleStudy.run_m2td`` through
each executor kind — inline, thread pool and process pool — and
asserts the decomposition agrees to machine precision, which is the
property that lets callers pick venues on affinity alone.
"""

import numpy as np
import pytest

from repro.core import EnsembleStudy
from repro.exceptions import TaskGraphError
from repro.runtime import (
    InlineExecutor,
    ProcessExecutor,
    Runtime,
    TaskGraph,
    ThreadExecutor,
    make_executor,
)
from repro.simulation import DoublePendulum


def _double(x):
    return x * 2


def _study_m2td(resolution: int = 5):
    """Build a small study and run M2TD-SELECT (module-level so the
    process pool can pickle it by qualified name)."""
    study = EnsembleStudy.create(DoublePendulum(), resolution=resolution)
    result = study.run_m2td([2] * 5, variant="select", seed=3)
    return result.accuracy, result.m2td.tucker.core


class TestContract:
    @pytest.mark.parametrize("kind", ["inline", "thread", "process"])
    def test_submit_returns_future(self, kind):
        executor = make_executor(kind, max_workers=2)
        try:
            assert executor.submit(_double, 21).result() == 42
            assert executor.kind == kind
        finally:
            executor.shutdown()

    def test_inline_runs_on_calling_thread(self):
        import threading

        seen = []
        InlineExecutor().submit(
            lambda: seen.append(threading.current_thread())
        ).result()
        assert seen == [threading.main_thread()]

    def test_exceptions_travel_through_futures(self):
        def boom():
            raise ValueError("inside")

        for executor in (InlineExecutor(), ThreadExecutor(1)):
            with pytest.raises(ValueError, match="inside"):
                executor.submit(boom).result()
            executor.shutdown()

    def test_pool_size_validated(self):
        with pytest.raises(TaskGraphError):
            ThreadExecutor(0)
        with pytest.raises(TaskGraphError):
            ProcessExecutor(-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TaskGraphError, match="unknown executor"):
            make_executor("gpu")

    def test_shutdown_then_resubmit_rebuilds_pool(self):
        executor = ThreadExecutor(1)
        assert executor.submit(_double, 1).result() == 2
        executor.shutdown()
        assert executor.submit(_double, 2).result() == 4
        executor.shutdown()


class TestDeterminismAcrossVenues:
    def test_full_m2td_study_identical(self):
        outcomes = {}
        for kind in ("inline", "thread", "process"):
            runtime = Runtime(workers=2)
            try:
                graph = TaskGraph()
                graph.add("study-m2td", _study_m2td, affinity=kind)
                outcomes[kind] = runtime.run(graph)["study-m2td"]
            finally:
                runtime.shutdown()
        accuracy0, core0 = outcomes["inline"]
        for kind in ("thread", "process"):
            accuracy, core = outcomes[kind]
            assert accuracy == pytest.approx(accuracy0, rel=1e-12)
            np.testing.assert_allclose(core, core0, rtol=1e-12, atol=1e-12)

    def test_graph_results_identical_across_worker_counts(self):
        from repro.runtime import output

        def chained():
            g = TaskGraph()
            g.add("a", np.arange, 24.0)
            g.add("b", lambda x: (x * 2).sum(), output("a"))
            g.add("c", lambda x: (x + 1).sum(), output("a"))
            g.add("d", lambda u, v: u + v, output("b"), output("c"))
            return g

        sequential = Runtime(workers=1)
        parallel = Runtime(workers=4)
        try:
            r1 = sequential.run(chained())["d"]
            r4 = parallel.run(chained())["d"]
            assert r1 == r4
        finally:
            sequential.shutdown()
            parallel.shutdown()
