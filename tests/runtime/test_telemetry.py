"""Runtime process-executor telemetry: task functions dispatched to a
process pool while tracing is on come back as telemetry envelopes the
scheduler unwraps — child spans land under ``dispatch:<task>`` spans,
child counters fold into the parent registry, and the cache stores the
unwrapped value.
"""

from repro.observability import (
    MetricsRegistry,
    Tracer,
    use_metrics,
    use_tracer,
)
from repro.runtime import Runtime, TaskGraph


def _traced_work(x):
    from repro.observability import get_metrics, span

    with span("child-work", "tensor-op", x=x):
        get_metrics().counter("child.calls").inc()
    return x * 2


def run_graph(workers=2, trace=True):
    tracer, registry = Tracer(), MetricsRegistry()
    runtime = Runtime(workers=workers)
    try:
        graph = TaskGraph()
        graph.add("double", _traced_work, 21, affinity="process")
        if trace:
            with use_tracer(tracer), use_metrics(registry):
                results = runtime.run(graph)
        else:
            with use_metrics(registry):
                results = runtime.run(graph)
    finally:
        runtime.shutdown()
    return results, tracer, registry


class TestProcessExecutorTelemetry:
    def test_envelope_unwrapped_and_spans_merged(self):
        results, tracer, registry = run_graph()
        assert results["double"] == 42
        dispatches = [
            s for s in tracer.iter_spans() if s.name == "dispatch:double"
        ]
        assert len(dispatches) == 1
        children = {c.name for c in dispatches[0].children}
        assert "child-work" in children
        child = next(
            c for c in dispatches[0].children if c.name == "child-work"
        )
        assert child.process_id > 0
        assert registry.as_dict()["child.calls"]["value"] == 1.0

    def test_untraced_run_ships_nothing(self):
        results, _, registry = run_graph(trace=False)
        assert results["double"] == 42
        assert "child.calls" not in registry.names()

    def test_cache_stores_the_unwrapped_value(self):
        tracer, registry = Tracer(), MetricsRegistry()
        runtime = Runtime(workers=2)
        try:
            with use_tracer(tracer), use_metrics(registry):
                for _ in range(2):
                    graph = TaskGraph()
                    graph.add(
                        "double", _traced_work, 21,
                        affinity="process", cache_key=("double", 21),
                    )
                    assert runtime.run(graph)["double"] == 42
            state = registry.as_dict()
            assert state["runtime.cache_hits"]["value"] == 1.0
            # The cached replay ran no child process: one merge only.
            assert state["child.calls"]["value"] == 1.0
        finally:
            runtime.shutdown()

    def test_thread_affinity_records_into_live_globals(self):
        tracer, registry = Tracer(), MetricsRegistry()
        runtime = Runtime(workers=2)
        try:
            graph = TaskGraph()
            graph.add("double", _traced_work, 21, affinity="thread")
            with use_tracer(tracer), use_metrics(registry):
                assert runtime.run(graph)["double"] == 42
        finally:
            runtime.shutdown()
        # Same process: no dispatch indirection, spans recorded live.
        assert not [
            s for s in tracer.iter_spans()
            if s.name.startswith("dispatch:")
        ]
        assert registry.as_dict()["child.calls"]["value"] == 1.0
