"""RetryPolicy semantics and their surfacing through the scheduler."""

import time

import pytest

from repro.exceptions import (
    RetryExhaustedError,
    TaskFailedError,
    TaskGraphError,
    TaskTimeoutError,
)
from repro.runtime import RetryPolicy, Runtime


class TestPolicy:
    def test_delay_schedule_bounded(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_seconds=0.1,
            backoff_factor=2.0,
            max_backoff_seconds=0.25,
        )
        assert policy.delay(1) == 0.0
        assert policy.delay(2) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.25)  # clamped

    def test_should_retry_honours_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2)
        error = ValueError("x")
        assert policy.should_retry(1, error)
        assert not policy.should_retry(2, error)

    def test_should_retry_filters_exception_types(self):
        policy = RetryPolicy(max_attempts=3, retry_on=(OSError,))
        assert policy.should_retry(1, OSError())
        assert not policy.should_retry(1, ValueError())

    def test_never_retries_non_retryable(self):
        policy = RetryPolicy(max_attempts=3, retry_on=(BaseException,))
        assert not policy.should_retry(1, MemoryError())

    def test_validation(self):
        with pytest.raises(TaskGraphError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(TaskGraphError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(TaskGraphError):
            RetryPolicy(timeout_seconds=0)
        with pytest.raises(TaskGraphError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(TaskGraphError):
            RetryPolicy(jitter=-0.1)


class TestJitter:
    """Decorrelation jitter: deterministic per (seed, key, attempt),
    decorrelated across keys, and only ever shortening delays."""

    POLICY = RetryPolicy(
        max_attempts=6,
        backoff_seconds=0.1,
        backoff_factor=2.0,
        max_backoff_seconds=10.0,
        jitter=0.5,
        jitter_seed=7,
    )

    def test_same_key_replays_exactly(self):
        first = [self.POLICY.delay(a, key="task-a") for a in range(2, 6)]
        second = [self.POLICY.delay(a, key="task-a") for a in range(2, 6)]
        assert first == second

    def test_distinct_keys_decorrelate(self):
        delays = {
            key: self.POLICY.delay(2, key=key)
            for key in ("worker-0", "worker-1", "worker-2", "worker-3")
        }
        assert len(set(delays.values())) == len(delays)

    def test_jitter_only_shortens(self):
        plain = RetryPolicy(
            max_attempts=6,
            backoff_seconds=0.1,
            backoff_factor=2.0,
            max_backoff_seconds=10.0,
        )
        for attempt in range(2, 6):
            jittered = self.POLICY.delay(attempt, key="k")
            base = plain.delay(attempt)
            assert 0.0 < jittered <= base
            # jitter=0.5 means at most half the delay is shaved off
            assert jittered >= base * 0.5

    def test_seed_changes_draws(self):
        other = RetryPolicy(
            max_attempts=6,
            backoff_seconds=0.1,
            jitter=0.5,
            jitter_seed=8,
        )
        assert other.delay(2, key="k") != self.POLICY.delay(2, key="k")

    def test_zero_jitter_is_exact_geometric(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_seconds=0.1, jitter=0.0
        )
        assert policy.delay(2, key="anything") == pytest.approx(0.1)
        assert policy.delay(3, key="anything") == pytest.approx(0.2)

    def test_budget_remains_hard_ceiling(self):
        policy = RetryPolicy(
            max_attempts=10,
            backoff_seconds=1.0,
            backoff_factor=2.0,
            max_backoff_seconds=100.0,
            backoff_budget_seconds=2.5,
            jitter=1.0,
        )
        total = sum(policy.delay(a, key="t") for a in range(2, 11))
        assert total <= 2.5 + 1e-9


class TestSchedulerRetries:
    def test_exhaustion_raises_with_task_name(self):
        attempts = []

        def flaky():
            attempts.append(1)
            raise ValueError("transient-ish")

        runtime = Runtime()
        with pytest.raises(RetryExhaustedError) as excinfo:
            runtime.call(
                "ingest-shard-7",
                flaky,
                retry=RetryPolicy(max_attempts=3, backoff_seconds=0.001),
            )
        assert excinfo.value.task_name == "ingest-shard-7"
        assert excinfo.value.attempts == 3
        assert "ingest-shard-7" in str(excinfo.value)
        assert len(attempts) == 3

    def test_success_after_transient_failures(self):
        state = {"calls": 0}

        def eventually():
            state["calls"] += 1
            if state["calls"] < 3:
                raise OSError("flake")
            return "done"

        result = Runtime().call(
            "eventually",
            eventually,
            retry=RetryPolicy(max_attempts=5, backoff_seconds=0.001),
        )
        assert result == "done" and state["calls"] == 3

    def test_single_attempt_failure_is_task_failed(self):
        def boom():
            raise ValueError("broken")

        with pytest.raises(TaskFailedError) as excinfo:
            Runtime().call("boom", boom)
        assert excinfo.value.task_name == "boom"

    def test_thread_timeout_surfaces(self):
        def slow():
            time.sleep(0.4)
            return 1

        runtime = Runtime(workers=2)
        try:
            with pytest.raises(TaskTimeoutError) as excinfo:
                runtime.call(
                    "slow-task",
                    slow,
                    affinity="thread",
                    retry=RetryPolicy(max_attempts=1, timeout_seconds=0.05),
                )
            assert excinfo.value.task_name == "slow-task"
        finally:
            runtime.shutdown()

    def test_timeout_then_retry_can_succeed(self):
        state = {"calls": 0}

        def slow_once():
            state["calls"] += 1
            if state["calls"] == 1:
                time.sleep(0.3)
            return state["calls"]

        runtime = Runtime(workers=2)
        try:
            result = runtime.call(
                "slow-once",
                slow_once,
                affinity="thread",
                retry=RetryPolicy(
                    max_attempts=2,
                    backoff_seconds=0.001,
                    timeout_seconds=0.1,
                ),
            )
            assert result == 2
        finally:
            runtime.shutdown()

    def test_metrics_record_attempts(self):
        state = {"calls": 0}

        def eventually():
            state["calls"] += 1
            if state["calls"] < 2:
                raise OSError("flake")
            return 1

        runtime = Runtime()
        runtime.call(
            "counted",
            eventually,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.001),
        )
        assert runtime.report.task("counted").attempts == 2
