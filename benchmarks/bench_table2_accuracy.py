"""Table II(a)/(b): accuracy and decomposition time per scheme on the
double pendulum.

Each benchmark times one scheme's sample-and-decompose path at the
benchmark resolution and rank; the printed table carries the measured
accuracies — the paper's shape is M2TD >> Grid/Slice >> Random at the
same cell budget, with M2TD paying more decomposition time.
"""

import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.sampling import GridSampler, RandomSampler, SliceSampler

RANKS = [BENCH_RANK] * 5


@pytest.mark.parametrize("variant", ["avg", "concat", "select"])
def test_m2td_variant(benchmark, pendulum_study, variant):
    result = benchmark(
        lambda: pendulum_study.run_m2td(RANKS, variant=variant, seed=BENCH_SEED)
    )
    print_report(
        f"Table II row: M2TD-{variant.upper()}",
        ["scheme", "accuracy", "cells", "join nnz"],
        [[result.scheme, float(result.accuracy), result.cells, result.join_nnz]],
    )
    assert result.accuracy > 0.1


@pytest.mark.parametrize(
    "sampler_factory",
    [
        lambda: RandomSampler(BENCH_SEED),
        lambda: GridSampler(),
        lambda: SliceSampler(BENCH_SEED),
    ],
    ids=["random", "grid", "slice"],
)
def test_conventional_scheme(benchmark, pendulum_study, sampler_factory):
    budget = pendulum_study.matched_budget()
    result = benchmark(
        lambda: pendulum_study.run_conventional(
            sampler_factory(), budget, RANKS
        )
    )
    print_report(
        f"Table II row: {result.scheme}",
        ["scheme", "accuracy", "cells"],
        [[result.scheme, float(result.accuracy), result.cells]],
    )
    assert result.accuracy < 0.1  # orders below M2TD


def test_table2_summary(pendulum_study):
    """Non-timed: print the full Table II comparison at bench scale."""
    rows = []
    for variant in ("avg", "concat", "select"):
        r = pendulum_study.run_m2td(RANKS, variant=variant, seed=BENCH_SEED)
        rows.append([r.scheme, float(r.accuracy), float(r.decompose_seconds)])
    budget = pendulum_study.matched_budget()
    for sampler in (
        RandomSampler(BENCH_SEED),
        GridSampler(),
        SliceSampler(BENCH_SEED),
    ):
        r = pendulum_study.run_conventional(sampler, budget, RANKS)
        rows.append([r.scheme, float(r.accuracy), float(r.decompose_seconds)])
    print_report(
        "Table II (bench scale)",
        ["scheme", "accuracy", "seconds"],
        rows,
    )
    m2td_floor = min(row[1] for row in rows[:3])
    conventional_ceiling = max(row[1] for row in rows[3:])
    assert m2td_floor > 3 * conventional_ceiling
