"""Ablation (ours): lazy closed-form core recovery vs materialising
the join tensor.

On complete sub-ensembles the lazy path recovers an identical core
while touching ``O(|X1| + |X2|)`` data instead of ``O(R^N)`` — this is
the quantitative version of the paper's observation that the join
tensor is too large to handle directly.
"""

import numpy as np
import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED
from repro.core.m2td import m2td_decompose
from repro.sampling import budget_for_fractions

RANKS = [BENCH_RANK] * 5


@pytest.fixture(scope="module")
def sub_tensors(pendulum_study):
    partition = pendulum_study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = pendulum_study.sample_sub_ensembles(
        partition, budget, seed=BENCH_SEED
    )
    return partition, x1, x2


def test_materialized_core(benchmark, sub_tensors):
    partition, x1, x2 = sub_tensors
    result = benchmark(
        lambda: m2td_decompose(x1, x2, partition, RANKS, lazy=False)
    )
    assert result.join_nnz > 0


def test_lazy_core(benchmark, sub_tensors):
    partition, x1, x2 = sub_tensors
    result = benchmark(
        lambda: m2td_decompose(x1, x2, partition, RANKS, lazy=True)
    )
    assert result.join_kind == "lazy"


def test_lazy_equals_materialized(sub_tensors):
    partition, x1, x2 = sub_tensors
    eager = m2td_decompose(x1, x2, partition, RANKS, lazy=False)
    lazy = m2td_decompose(x1, x2, partition, RANKS, lazy=True)
    assert np.allclose(eager.tucker.core, lazy.tucker.core)
