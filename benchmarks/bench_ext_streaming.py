"""Extension bench: incremental factor updates vs batch refits.

Times one streamed slab append (incremental SVD updates on every
matricization) against a from-scratch refit of the same state — the
saving that makes live-monitoring M2TD practical.
"""

import numpy as np
import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.core.incremental import IncrementalM2TD, batch_reference
from repro.sampling import budget_for_fractions

RANKS_JOIN = [BENCH_RANK] * 5


@pytest.fixture(scope="module")
def stream_data(pendulum_study):
    partition = pendulum_study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = pendulum_study.sample_sub_ensembles(
        partition, budget, seed=BENCH_SEED
    )
    return x1.to_dense(), x2.to_dense()


def test_incremental_append(benchmark, stream_data):
    x1, x2 = stream_data
    t = x1.shape[0]

    def run_once():
        state = IncrementalM2TD(x1[: t - 1], x2[: t - 1], RANKS_JOIN)
        state.append(x1[t - 1 : t], x2[t - 1 : t])
        return state.factors()

    factors = benchmark(run_once)
    assert len(factors) == 5


def test_batch_refit(benchmark, stream_data):
    x1, x2 = stream_data
    result = benchmark(lambda: batch_reference(x1, x2, RANKS_JOIN))
    assert result.ndim == 5


def test_streamed_quality_summary(stream_data):
    x1, x2 = stream_data
    t = x1.shape[0]
    state = IncrementalM2TD(x1[:4], x2[:4], RANKS_JOIN)
    for step in range(4, t):
        state.append(x1[step : step + 1], x2[step : step + 1])
    streamed = state.decompose().tucker
    batch = batch_reference(x1, x2, RANKS_JOIN)

    def fit(tucker):
        joined = 0.5 * (
            x1.reshape(x1.shape + (1, 1))
            + x2.reshape((t, 1, 1) + x2.shape[1:])
        )
        rec = tucker.reconstruct()
        return 1 - np.linalg.norm(rec - joined) / np.linalg.norm(joined)

    rows = [["streamed", float(fit(streamed))], ["batch", float(fit(batch))]]
    print_report("Streaming vs batch fit", ["mode", "join fit"], rows)
    assert rows[0][1] > rows[1][1] - 0.05
