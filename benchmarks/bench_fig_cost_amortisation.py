"""Section VII-E1's cost-amortisation claim.

Benchmarks the simulation work each strategy performs: the partitioned
scheme integrates only ``2 * E`` parameter combinations, the full
space needs ``R^4``.  Paper shape: the same effective density for a
small fraction of the integrator work.
"""

import numpy as np

from _bench_utils import print_report
from repro.simulation import simulate_fibers


def _sub_ensemble_runs(study):
    partition = study.default_partition()
    space = study.space
    runs = []
    for which in (1, 2):
        free_modes = partition.s1_free if which == 1 else partition.s2_free
        combos = np.stack(
            np.meshgrid(
                *(np.arange(space.shape[m]) for m in free_modes),
                indexing="ij",
            ),
            axis=-1,
        ).reshape(-1, len(free_modes))
        block = np.empty((combos.shape[0], space.n_param_modes), dtype=np.int64)
        for mode in range(space.n_param_modes):
            if mode in free_modes:
                block[:, mode] = combos[:, free_modes.index(mode)]
            else:
                block[:, mode] = partition.fixed_indices[mode]
        runs.append(block)
    return np.vstack(runs)


def test_partitioned_simulation_cost(benchmark, pendulum_study):
    indices = _sub_ensemble_runs(pendulum_study)
    benchmark(
        lambda: simulate_fibers(
            pendulum_study.space, pendulum_study.observation, indices
        )
    )
    assert indices.shape[0] == 2 * pendulum_study.space.resolution ** 2


def test_full_space_simulation_cost(benchmark, pendulum_study):
    space = pendulum_study.space
    total = space.n_simulations_full
    all_indices = np.stack(
        np.unravel_index(
            np.arange(total), (space.resolution,) * space.n_param_modes
        ),
        axis=1,
    )
    benchmark(
        lambda: simulate_fibers(
            space, pendulum_study.observation, all_indices
        )
    )


def test_cost_summary(pendulum_study):
    space = pendulum_study.space
    partitioned = _sub_ensemble_runs(pendulum_study).shape[0]
    full = space.n_simulations_full
    print_report(
        "Simulation runs needed (bench scale)",
        ["scheme", "runs"],
        [["partition-stitch", partitioned], ["full space", full]],
    )
    assert partitioned * 4 <= full
