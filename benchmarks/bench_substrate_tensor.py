"""Substrate micro-benchmarks: the tensor kernels every experiment
leans on (unfold, TTM, sparse matricization, HOSVD)."""

import numpy as np
import pytest

from repro.tensor import SparseTensor, hosvd, multi_ttm, st_hosvd, ttm, unfold

SHAPE = (20, 20, 20, 20)


@pytest.fixture(scope="module")
def dense():
    return np.random.default_rng(0).standard_normal(SHAPE)


@pytest.fixture(scope="module")
def sparse(dense):
    thinned = dense.copy()
    thinned[np.abs(thinned) < 1.5] = 0.0
    return SparseTensor.from_dense(thinned)


def test_unfold(benchmark, dense):
    matrix = benchmark(lambda: unfold(dense, 2))
    assert matrix.shape == (20, 8000)


def test_ttm(benchmark, dense):
    matrix = np.random.default_rng(1).standard_normal((5, 20))
    result = benchmark(lambda: ttm(dense, matrix, 1))
    assert result.shape == (20, 5, 20, 20)


def test_multi_ttm_projection(benchmark, dense):
    factors = [
        np.linalg.qr(
            np.random.default_rng(m).standard_normal((20, 4))
        )[0]
        for m in range(4)
    ]
    core = benchmark(lambda: multi_ttm(dense, factors, transpose=True))
    assert core.shape == (4, 4, 4, 4)


def test_sparse_matricization(benchmark, sparse):
    matrix = benchmark(lambda: sparse.unfold_csr(0))
    assert matrix.shape == (20, 8000)


def test_hosvd_dense(benchmark, dense):
    result = benchmark(lambda: hosvd(dense, (4, 4, 4, 4)))
    assert result.rank == (4, 4, 4, 4)


def test_hosvd_sparse(benchmark, sparse):
    result = benchmark(lambda: hosvd(sparse, (4, 4, 4, 4)))
    assert result.rank == (4, 4, 4, 4)


def test_st_hosvd_dense(benchmark, dense):
    """ST-HOSVD projects modes away as it goes — typically several
    times faster than plain HOSVD at equal approximation quality."""
    result = benchmark(lambda: st_hosvd(dense, (4, 4, 4, 4)))
    assert result.rank == (4, 4, 4, 4)
