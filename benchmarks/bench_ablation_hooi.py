"""Ablation (ours): HOSVD vs HOOI on the stitched join tensor.

DESIGN.md calls out plain HOSVD factor extraction as a design choice;
this bench quantifies what HOOI refinement would buy (fit against the
join tensor) and cost (time).
"""

import numpy as np
import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.core.join_tensor import dense_join_from_subs
from repro.sampling import budget_for_fractions
from repro.tensor import hooi, hosvd


@pytest.fixture(scope="module")
def join_dense(pendulum_study):
    partition = pendulum_study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = pendulum_study.sample_sub_ensembles(
        partition, budget, seed=BENCH_SEED
    )
    return dense_join_from_subs(x1.to_dense(), x2.to_dense(), partition)


RANKS = (BENCH_RANK,) * 5


def test_hosvd_on_join(benchmark, join_dense):
    result = benchmark(lambda: hosvd(join_dense, RANKS))
    assert result.relative_error(join_dense) < 1.0


def test_hooi_on_join(benchmark, join_dense):
    result = benchmark(lambda: hooi(join_dense, RANKS, n_iter=3))
    assert result.relative_error(join_dense) < 1.0


def test_hooi_refines_fit(join_dense):
    base = hosvd(join_dense, RANKS).relative_error(join_dense)
    refined = hooi(join_dense, RANKS, n_iter=5).relative_error(join_dense)
    print_report(
        "HOSVD vs HOOI on the join tensor",
        ["method", "relative error"],
        [["HOSVD", float(base)], ["HOOI", float(refined)]],
    )
    assert refined <= base + 1e-10
    assert np.isfinite(refined)
