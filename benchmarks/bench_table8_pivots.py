"""Table VIII: pivot parameter choice on the double pendulum.

Paper shape: pivot choice moves M2TD accuracy somewhat, but every
pivot stays orders of magnitude above the conventional schemes.
"""

import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.experiments.table8 import pendulum_partition
from repro.sampling import RandomSampler

RANKS = [BENCH_RANK] * 5
PIVOTS = ("t", "phi1", "phi2", "m1", "m2")


@pytest.mark.parametrize("pivot", PIVOTS)
def test_pivot_choice(benchmark, pendulum_study, pivot):
    partition = pendulum_partition(pendulum_study, pivot)
    result = benchmark(
        lambda: pendulum_study.run_m2td(
            RANKS, pivot=pivot, partition=partition, seed=BENCH_SEED
        )
    )
    assert result.accuracy > 0


def test_table8_summary(pendulum_study):
    rows = []
    random_accuracy = None
    for pivot in PIVOTS:
        partition = pendulum_partition(pendulum_study, pivot)
        r = pendulum_study.run_m2td(
            RANKS, pivot=pivot, partition=partition, seed=BENCH_SEED
        )
        if random_accuracy is None:
            baseline = pendulum_study.run_conventional(
                RandomSampler(BENCH_SEED), r.cells, RANKS
            )
            random_accuracy = baseline.accuracy
        rows.append([pivot, float(r.accuracy)])
    print_report(
        "Table VIII (bench scale)",
        ["pivot", "M2TD-SELECT"],
        rows + [["(Random)", float(random_accuracy)]],
    )
    for _pivot, accuracy in rows:
        assert accuracy > 2 * max(random_accuracy, 1e-9)
