"""Shared fixtures for the benchmark harness.

Every bench works against session-cached studies at the benchmark
resolution, so pytest-benchmark timings measure decomposition work,
not ground-truth construction.  Study creation goes through the
shared runtime's content-addressed cache, so each (system,
resolution) truth tensor is simulated once per session — and, with
``M2TD_CACHE_DIR`` set, once *ever*.  Each table bench also prints
the reproduced rows (use ``-s`` to see them) so a benchmark run
doubles as an experiment log.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_RESOLUTION
from repro.core import EnsembleStudy
from repro.runtime import session_runtime
from repro.simulation import make_system


@pytest.fixture(scope="session")
def studies():
    """Lazily-built studies per system at benchmark scale."""
    cache = {}

    def get(system_name: str) -> EnsembleStudy:
        if system_name not in cache:
            cache[system_name] = EnsembleStudy.create(
                make_system(system_name),
                BENCH_RESOLUTION,
                runtime=session_runtime(),
            )
        return cache[system_name]

    return get


@pytest.fixture(scope="session")
def pendulum_study(studies):
    return studies("double_pendulum")
