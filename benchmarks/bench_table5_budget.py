"""Table V: reduced budgets and zero-join stitching.

Benchmarks the M2TD path under the low-budget random sub-sampling
regime with plain join and with zero-join.  Paper shape: accuracy
drops for everyone at 10% budget, and zero-join recovers a large part
of the loss by boosting the stitched density.
"""

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report

RANKS = [BENCH_RANK] * 5
LOW_FRACTION = 0.1


def test_full_budget_join(benchmark, pendulum_study):
    result = benchmark(
        lambda: pendulum_study.run_m2td(RANKS, seed=BENCH_SEED)
    )
    assert result.accuracy > 0.1


def test_low_budget_plain_join(benchmark, pendulum_study):
    result = benchmark(
        lambda: pendulum_study.run_m2td(
            RANKS,
            free_fraction=LOW_FRACTION,
            sub_sampling="random",
            join_kind="join",
            seed=BENCH_SEED,
        )
    )
    assert result.cells < pendulum_study.matched_budget()


def test_low_budget_zero_join(benchmark, pendulum_study):
    result = benchmark(
        lambda: pendulum_study.run_m2td(
            RANKS,
            free_fraction=LOW_FRACTION,
            sub_sampling="random",
            join_kind="zero",
            seed=BENCH_SEED,
        )
    )
    assert result.join_nnz > 0


def test_table5_summary(pendulum_study):
    full = pendulum_study.run_m2td(RANKS, seed=BENCH_SEED)
    low_join = pendulum_study.run_m2td(
        RANKS, free_fraction=LOW_FRACTION, sub_sampling="random",
        join_kind="join", seed=BENCH_SEED,
    )
    low_zero = pendulum_study.run_m2td(
        RANKS, free_fraction=LOW_FRACTION, sub_sampling="random",
        join_kind="zero", seed=BENCH_SEED,
    )
    print_report(
        "Table V (bench scale)",
        ["budget", "stitch", "accuracy", "join nnz"],
        [
            ["100%", "join", float(full.accuracy), full.join_nnz],
            ["10%", "join", float(low_join.accuracy), low_join.join_nnz],
            ["10%", "zero-join", float(low_zero.accuracy), low_zero.join_nnz],
        ],
    )
    assert full.accuracy > low_zero.accuracy
    assert low_zero.join_nnz > low_join.join_nnz
    assert low_zero.accuracy > low_join.accuracy
