"""Table VI: reduced pivot density P (E stays at 100%).

Paper shape: lowering P reduces the budget and the accuracy, but far
more gently than lowering E (see bench_table7) — effective density is
proportional to P * E^2.
"""

import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report

RANKS = [BENCH_RANK] * 5
FRACTIONS = (1.0, 0.5, 0.25)


@pytest.mark.parametrize("pivot_fraction", FRACTIONS)
def test_pivot_density(benchmark, pendulum_study, pivot_fraction):
    result = benchmark(
        lambda: pendulum_study.run_m2td(
            RANKS, pivot_fraction=pivot_fraction, seed=BENCH_SEED
        )
    )
    assert result.accuracy > 0


def test_table6_summary(pendulum_study):
    rows = []
    for fraction in FRACTIONS:
        r = pendulum_study.run_m2td(
            RANKS, pivot_fraction=fraction, seed=BENCH_SEED
        )
        rows.append([f"{fraction:.0%}", r.cells, float(r.accuracy)])
    print_report("Table VI (bench scale)", ["P", "cells", "M2TD-SELECT"], rows)
    # budget shrinks with P
    assert rows[0][1] > rows[1][1] > rows[2][1]
