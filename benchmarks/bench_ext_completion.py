"""Extension bench: EM-Tucker completion as a rescue for conventional
sampling — accuracy and (substantial) iteration cost vs M2TD."""

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.sampling import RandomSampler
from repro.tensor import SparseTensor, clip_ranks, completion_accuracy, em_tucker

RANKS = [BENCH_RANK] * 5


def _observed(study, budget):
    sample = RandomSampler(BENCH_SEED).sample(study.space.shape, budget)
    values = study.truth[tuple(sample.coords.T)]
    return SparseTensor(study.space.shape, sample.coords, values)


def test_em_completion(benchmark, pendulum_study):
    budget = pendulum_study.matched_budget()
    observed = _observed(pendulum_study, budget)
    ranks = clip_ranks(pendulum_study.space.shape, RANKS)
    result = benchmark(lambda: em_tucker(observed, ranks, n_iter=10))
    assert completion_accuracy(result, pendulum_study.truth) > 0


def test_m2td_reference(benchmark, pendulum_study):
    result = benchmark(
        lambda: pendulum_study.run_m2td(RANKS, seed=BENCH_SEED)
    )
    assert result.accuracy > 0


def test_completion_summary(pendulum_study):
    budget = pendulum_study.matched_budget()
    observed = _observed(pendulum_study, budget)
    ranks = clip_ranks(pendulum_study.space.shape, RANKS)
    plain = pendulum_study.run_conventional(
        RandomSampler(BENCH_SEED), budget, RANKS
    )
    completed = em_tucker(observed, ranks, n_iter=20)
    m2td = pendulum_study.run_m2td(RANKS, seed=BENCH_SEED)
    rows = [
        ["Random + HOSVD", float(plain.accuracy)],
        [
            "Random + EM completion",
            float(completion_accuracy(completed, pendulum_study.truth)),
        ],
        ["partition-stitch + M2TD", float(m2td.accuracy)],
    ]
    print_report("Completion rescue (bench scale)", ["scheme", "accuracy"], rows)
    assert rows[1][1] > rows[0][1]  # completion helps...
    assert rows[2][1] > rows[0][1]  # ...and M2TD still beats the baseline
