"""Helpers shared by the benchmark modules (not a test file)."""

from __future__ import annotations

from repro.experiments import format_table

#: Parameter-space resolution every benchmark runs at.
BENCH_RESOLUTION = 8

#: Per-mode target rank every benchmark runs at.
BENCH_RANK = 3

#: RNG seed for all benchmark sampling.
BENCH_SEED = 7


def print_report(title, headers, rows):
    """Render a table into the captured benchmark output (-s shows it)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
