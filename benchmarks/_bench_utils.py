"""Helpers shared by the benchmark modules (not a test file).

The scale constants live in :mod:`repro.bench.workloads` — the single
source of truth shared with ``python -m repro.bench`` — and are
re-exported here so the pytest benches and the harness cannot drift.
"""

from __future__ import annotations

from repro.bench.workloads import (  # noqa: F401  (re-exported)
    BENCH_RANK,
    BENCH_RESOLUTION,
    BENCH_SEED,
)
from repro.experiments import format_table


def print_report(title, headers, rows):
    """Render a table into the captured benchmark output (-s shows it)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
