"""Ablation (ours): ROW_SELECT's row-energy metric.

Algorithm 5 compares "the energies (captured by the 2-norm function)
of each row" of the two pivot factor matrices.  Two readings exist:

* plain ``U`` row norms — leverage scores of the orthonormal factors;
* ``U @ diag(sigma)`` row norms — each entity's actual spectral energy
  in its sub-ensemble (the reading this library uses).

This bench quantifies the difference by fitting the join tensor with
each metric's selected factor.  The spectral reading consistently fits
as well or better — with the plain reading SELECT can fall below AVG,
which is how the ambiguity was diagnosed (see EXPERIMENTS.md).
"""

import numpy as np

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.core.join_tensor import dense_join_from_subs
from repro.core.row_select import align_columns
from repro.sampling import budget_for_fractions
from repro.tensor import (
    leading_left_singular_vectors,
    multi_ttm,
    truncated_svd,
    unfold,
)

RANK = BENCH_RANK


def _setup(study):
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = study.sample_sub_ensembles(
        partition, budget, seed=BENCH_SEED
    )
    x1d, x2d = x1.to_dense(), x2.to_dense()
    joined = dense_join_from_subs(x1d, x2d, partition)
    free_factors = [
        leading_left_singular_vectors(unfold(x1d, axis), RANK)
        for axis in (1, 2)
    ] + [
        leading_left_singular_vectors(unfold(x2d, axis), RANK)
        for axis in (1, 2)
    ]
    u1, s1, _ = truncated_svd(unfold(x1d, 0), RANK)
    u2, s2, _ = truncated_svd(unfold(x2d, 0), RANK)
    u2 = align_columns(u1, u2)
    return joined, free_factors, u1, s1, u2, s2


def _fit(joined, pivot_factor, free_factors):
    factors = [pivot_factor] + free_factors
    core = multi_ttm(joined, factors, transpose=True)
    reconstruction = multi_ttm(core, factors)
    return 1 - np.linalg.norm(reconstruction - joined) / np.linalg.norm(joined)


def _select(u1, u2, e1, e2):
    return np.where((e1 >= e2)[:, None], u1, u2)


def test_plain_u_energy(benchmark, pendulum_study):
    joined, free_factors, u1, _s1, u2, _s2 = _setup(pendulum_study)
    e1 = np.linalg.norm(u1, axis=1)
    e2 = np.linalg.norm(u2, axis=1)
    fit = benchmark(
        lambda: _fit(joined, _select(u1, u2, e1, e2), free_factors)
    )
    assert fit > 0


def test_spectral_energy(benchmark, pendulum_study):
    joined, free_factors, u1, s1, u2, s2 = _setup(pendulum_study)
    e1 = np.linalg.norm(u1 * s1[None, :], axis=1)
    e2 = np.linalg.norm(u2 * s2[None, :], axis=1)
    fit = benchmark(
        lambda: _fit(joined, _select(u1, u2, e1, e2), free_factors)
    )
    assert fit > 0


def test_energy_metric_summary(pendulum_study):
    joined, free_factors, u1, s1, u2, s2 = _setup(pendulum_study)
    plain_fit = _fit(
        joined,
        _select(
            u1, u2, np.linalg.norm(u1, axis=1), np.linalg.norm(u2, axis=1)
        ),
        free_factors,
    )
    spectral_fit = _fit(
        joined,
        _select(
            u1,
            u2,
            np.linalg.norm(u1 * s1[None, :], axis=1),
            np.linalg.norm(u2 * s2[None, :], axis=1),
        ),
        free_factors,
    )
    print_report(
        "ROW_SELECT energy metric (fit against the join tensor)",
        ["metric", "fit"],
        [["plain U", float(plain_fit)], ["U*sigma", float(spectral_fit)]],
    )
    assert spectral_fit >= plain_fit - 1e-9
