"""Extension bench: partition depth (two-way vs four-way multiway)."""

import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.core.multiway import MWPartition, multiway_study
from repro.sampling import RandomSampler

RANKS = [BENCH_RANK] * 5


@pytest.mark.parametrize(
    "groups,label",
    [
        ((("phi1", "m1"), ("phi2", "m2")), "m2"),
        (None, "m4"),
    ],
    ids=["two-way", "four-way"],
)
def test_multiway_depth(benchmark, pendulum_study, groups, label):
    partition = MWPartition.for_space(
        pendulum_study.space, pivot="t", groups=groups
    )
    result, cells = benchmark(
        lambda: multiway_study(
            pendulum_study.truth, partition, RANKS, variant="select"
        )
    )
    assert result.accuracy(pendulum_study.truth) > 0


def test_depth_summary(pendulum_study):
    rows = []
    for groups, m in (
        ((("phi1", "m1"), ("phi2", "m2")), 2),
        (None, 4),
    ):
        partition = MWPartition.for_space(
            pendulum_study.space, pivot="t", groups=groups
        )
        result, cells = multiway_study(
            pendulum_study.truth, partition, RANKS, variant="select"
        )
        baseline = pendulum_study.run_conventional(
            RandomSampler(BENCH_SEED), cells, RANKS
        )
        rows.append(
            [
                m,
                cells,
                float(result.accuracy(pendulum_study.truth)),
                float(baseline.accuracy),
            ]
        )
    print_report(
        "Partition depth (bench scale)",
        ["m", "cells", "M2TD-SELECT", "Random"],
        rows,
    )
    # deeper partition: smaller budget, lower (but still winning) accuracy
    assert rows[1][1] < rows[0][1]
    assert rows[1][2] > 3 * max(rows[1][3], 1e-9)
