"""Table VII: reduced sub-ensemble density E (P stays at 100%).

Paper shape: at equal budget reductions, shrinking E costs much more
accuracy than shrinking P — E enters the effective density squared.
"""

import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report

RANKS = [BENCH_RANK] * 5
FRACTIONS = (1.0, 0.5, 0.25)


@pytest.mark.parametrize("free_fraction", FRACTIONS)
def test_sub_density(benchmark, pendulum_study, free_fraction):
    result = benchmark(
        lambda: pendulum_study.run_m2td(
            RANKS, free_fraction=free_fraction, seed=BENCH_SEED
        )
    )
    assert result.accuracy > 0


def test_table7_summary_and_cross_check(pendulum_study):
    rows = []
    for fraction in FRACTIONS:
        r = pendulum_study.run_m2td(
            RANKS, free_fraction=fraction, seed=BENCH_SEED
        )
        rows.append([f"{fraction:.0%}", r.cells, float(r.accuracy)])
    print_report("Table VII (bench scale)", ["E", "cells", "M2TD-SELECT"], rows)
    # The paper's cross-table claim: the E-reduction at 25% hurts at
    # least as much as the same P-reduction.
    p_reduced = pendulum_study.run_m2td(
        RANKS, pivot_fraction=FRACTIONS[-1], seed=BENCH_SEED
    )
    e_reduced_accuracy = rows[-1][2]
    assert e_reduced_accuracy <= p_reduced.accuracy + 1e-9
