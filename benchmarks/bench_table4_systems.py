"""Table IV: the three dynamic systems.

Benchmarks M2TD-SELECT per system and prints the accuracy comparison
against the Random baseline.  Paper shape: M2TD's advantage holds on
every system.
"""

import pytest

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.sampling import RandomSampler

SYSTEMS = ("double_pendulum", "triple_pendulum", "lorenz")
RANKS = [BENCH_RANK] * 5


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_m2td_per_system(benchmark, studies, system_name):
    study = studies(system_name)
    result = benchmark(
        lambda: study.run_m2td(RANKS, variant="select", seed=BENCH_SEED)
    )
    random = study.run_conventional(
        RandomSampler(BENCH_SEED), study.matched_budget(), RANKS
    )
    print_report(
        f"Table IV row: {system_name}",
        ["system", "M2TD-SELECT", "Random"],
        [[system_name, float(result.accuracy), float(random.accuracy)]],
    )
    assert result.accuracy > 3 * max(random.accuracy, 1e-9)
