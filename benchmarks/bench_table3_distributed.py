"""Table III: D-M2TD phase split and scaling with servers.

Benchmarks the 3-phase distributed pipeline and prints, for each
cluster size, the modelled per-phase wall-clock.  Paper shape: phase 3
(core recovery) dominates; adding servers helps with diminishing
returns.
"""

from _bench_utils import BENCH_RANK, BENCH_SEED, print_report
from repro.distributed import ClusterModel, distributed_m2td
from repro.sampling import budget_for_fractions

SERVERS = (1, 2, 4, 9, 18)


def _sub_ensembles(study):
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = study.sample_sub_ensembles(
        partition, budget, seed=BENCH_SEED
    )
    return partition, x1, x2


def test_dm2td_pipeline(benchmark, pendulum_study):
    partition, x1, x2 = _sub_ensembles(pendulum_study)
    ranks = [BENCH_RANK] * 5
    outcome = benchmark(
        lambda: distributed_m2td(x1, x2, partition, ranks, variant="select")
    )
    rows = []
    for n_servers in SERVERS:
        times = outcome.phase_times(ClusterModel(n_servers=n_servers))
        rows.append(
            [
                n_servers,
                float(times["phase1"]),
                float(times["phase2"]),
                float(times["phase3"]),
                float(sum(times.values())),
            ]
        )
    print_report(
        "Table III (bench scale, simulated cluster)",
        ["servers", "phase1", "phase2", "phase3", "total"],
        rows,
    )
    # scaling shape: total never increases with more servers
    totals = [row[4] for row in rows]
    assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))
    # phase 3 dominates on a single server
    assert rows[0][3] >= rows[0][1]


def test_phase3_is_costliest_compute(pendulum_study):
    partition, x1, x2 = _sub_ensembles(pendulum_study)
    outcome = distributed_m2td(
        x1, x2, partition, [BENCH_RANK] * 5, variant="select"
    )
    compute = {
        phase: stats.total_compute_seconds
        for phase, stats in outcome.job_stats.items()
    }
    print_report(
        "Raw per-phase compute seconds",
        ["phase", "seconds"],
        [[k, float(v)] for k, v in compute.items()],
    )
    # At bench scale raw phase compute is ~1 ms each and jittery; the
    # robust claim is that the join-side work (stitch + core recovery)
    # dominates the sub-decompositions, with slack for timer noise.
    join_side = compute["phase2"] + compute["phase3"]
    assert join_side >= 0.5 * compute["phase1"]
