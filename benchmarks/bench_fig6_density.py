"""Figure 6: effective density of partition-stitch sampling.

Benchmarks the JE-stitching step itself and prints the analytic vs
measured density gains — the measured join entry count must equal the
``P * E^2`` arithmetic exactly under cross-product sampling.
"""

import pytest

from _bench_utils import BENCH_SEED, print_report
from repro.core import join_tensor
from repro.sampling import budget_for_fractions, effective_density_ratio


@pytest.mark.parametrize("free_fraction", [1.0, 0.5, 0.25])
def test_stitching_speed(benchmark, pendulum_study, free_fraction):
    partition = pendulum_study.default_partition()
    budget = budget_for_fractions(partition, 1.0, free_fraction)
    x1, x2, _cells, _runs = pendulum_study.sample_sub_ensembles(
        partition, budget, seed=BENCH_SEED
    )
    joined = benchmark(lambda: join_tensor(x1, x2, partition))
    assert joined.nnz == budget.join_entries


def test_fig6_summary(pendulum_study):
    partition = pendulum_study.default_partition()
    full_cells = pendulum_study.truth.size
    rows = []
    for fraction in (1.0, 0.5, 0.25):
        budget = budget_for_fractions(partition, 1.0, fraction)
        x1, x2, cells, _runs = pendulum_study.sample_sub_ensembles(
            partition, budget, seed=BENCH_SEED
        )
        joined = join_tensor(x1, x2, partition)
        measured_gain = (joined.nnz / full_cells) / (cells / full_cells)
        analytic_gain = effective_density_ratio(partition, budget)
        rows.append(
            [f"{fraction:.0%}", cells, joined.nnz,
             float(analytic_gain), float(measured_gain)]
        )
        assert measured_gain == pytest.approx(analytic_gain, rel=0.01)
    print_report(
        "Figure 6 (bench scale)",
        ["E", "budget cells", "join entries", "gain analytic", "gain measured"],
        rows,
    )
